/**
 * @file
 * Builders for the Transformer and Hybrid evaluation models.
 */
#ifndef SMARTMEM_MODELS_TRANSFORMERS_H
#define SMARTMEM_MODELS_TRANSFORMERS_H

#include "ir/graph.h"

namespace smartmem::models {

ir::Graph buildSwin(int batch);
ir::Graph buildSwinTiny(int batch);
ir::Graph buildAutoFormer(int batch);
ir::Graph buildCrossFormer(int batch);
ir::Graph buildCSwin(int batch);
ir::Graph buildBiFormer(int batch);
ir::Graph buildFlattenFormer(int batch);
ir::Graph buildSmtFormer(int batch);
ir::Graph buildViT(int batch);
ir::Graph buildViTTiny(int batch);
ir::Graph buildEfficientViT(int batch);

} // namespace smartmem::models

#endif // SMARTMEM_MODELS_TRANSFORMERS_H
