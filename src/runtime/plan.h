/**
 * @file
 * ExecutionPlan: the compiled form of a graph.
 *
 * A plan is an ordered list of kernels over the *original* graph.  Each
 * kernel executes a fused group of original nodes; operators eliminated
 * by Layout Transformation Elimination appear in no kernel -- instead
 * the consuming kernel's input carries the composed IndexMap that
 * reproduces their semantics during reads.  Layouts and memory-space
 * placement are per-kernel annotations.  Every compiler (SmartMem and
 * the six baselines) produces this structure; the cost model, the
 * simulated executor, the memory pool, and the functional equivalence
 * runner all consume it.
 */
#ifndef SMARTMEM_RUNTIME_PLAN_H
#define SMARTMEM_RUNTIME_PLAN_H

#include <optional>
#include <string>
#include <vector>

#include "index/index_map.h"
#include "ir/graph.h"
#include "ir/layout.h"

namespace smartmem::runtime {

/** One external input of a kernel. */
struct KernelInput
{
    /** Value actually stored in memory (produced by an earlier kernel,
     *  a model input, or a constant). */
    ir::ValueId source = -1;

    /** Value id the kernel's fused nodes reference.  Differs from
     *  `source` when a chain of layout transformations between them was
     *  eliminated; then `readMap` maps substitute-coordinates to
     *  source-coordinates. */
    ir::ValueId substitute = -1;

    /** Composed access function source<-substitute (identity if none
     *  eliminated). */
    std::optional<index::IndexMap> readMap;

    /** Physical layout the kernel reads `source` in. */
    ir::Layout layout;

    /** Which stored copy of `source` is read (SmartMem may keep several
     *  copies in different layouts, Section 3.2.2 / 4.6). */
    int sourceCopy = 0;

    /** True when `source` is produced by an earlier fused node of the
     *  *same* kernel -- fusion across an eliminated transformation
     *  chain.  No memory traffic; only index computation. */
    bool internalSource = false;
};

/** One launched kernel: a fused group of original graph nodes. */
struct Kernel
{
    /** Human-readable name, taken from the last node of the fusion
     *  group (the node whose output the kernel materializes). */
    std::string name;

    /** Original node ids executed by this kernel, in topological order.
     *  Empty only for pure layout-copy kernels. */
    std::vector<ir::NodeId> fusedNodes;

    /** External inputs read from memory (or, for `internalSource`,
     *  recomputed in-register across an eliminated transform chain). */
    std::vector<KernelInput> inputs;

    /** The value this kernel materializes. */
    ir::ValueId output = -1;

    /** Layout the output is written in. */
    ir::Layout outLayout;

    /**
     * True for an explicit data-relayout kernel: either a surviving
     * Reshape/Transpose-style operator (baselines) or a redundant-copy
     * kernel inserted by SmartMem's global layout selection when
     * consumers demand more than k distinct layouts (Section 3.2.2).
     */
    bool isLayoutCopy = false;

    /** For SmartMem redundant copies: index of the copy of `output`. */
    int copyIndex = 0;

    /** Relative compute efficiency of the tuned launch configuration
     *  (block dims / unrolling / tiling), in (0, 1]; produced by the
     *  genetic auto-tuner, 0.85 for untuned kernels. */
    double tunedEfficiency = 0.85;

    /** True when this kernel's FusedAttention node runs the streaming
     *  online-softmax path: the score matrix never hits memory, so the
     *  cost model and the live-bytes simulation drop its traffic.  Set
     *  by the planner under FusionPolicy::fuseAttentionBlock. */
    bool streamingAttention = false;
};

/** A compiled executable plan. */
struct ExecutionPlan
{
    /** Which compiler produced the plan ("SmartMem", "MNN", "NCNN",
     *  ..., or a Figure 8 stage name); labels benchmark/CLI rows. */
    std::string compilerName;

    /**
     * Canonical (device, model, options) key the plan was compiled
     * under; set by core::CompileSession, empty for plans built
     * outside a session.  Compilation is deterministic, so two plans
     * with equal non-empty keys are interchangeable -- this is what
     * makes the session's plan cache and the on-disk PlanCacheDir
     * sound.  Excluded from toString(): the dump describes the
     * compiled kernels, which do not depend on how the plan was keyed.
     * Preserved by serialize::serializePlan()/parsePlan().
     */
    std::string cacheKey;

    /** The original (unoptimized) graph the kernels index into. */
    ir::Graph graph;

    /** Launch-ordered kernels; their count is the Table 7 metric. */
    std::vector<Kernel> kernels;

    /** Number of launched operators -- the Table 7 metric. */
    int operatorCount() const
    {
        return static_cast<int>(kernels.size());
    }

    /** Count of kernels that are explicit layout transformations. */
    int layoutCopyCount() const
    {
        int n = 0;
        for (const Kernel &k : kernels)
            if (k.isLayoutCopy)
                ++n;
        return n;
    }

    /** Multi-line dump of every kernel with inputs, layouts, and
     *  read maps; what `smartmem_cli compile --dump-plan` prints.
     *  Human-oriented and lossy (no tuned efficiencies, fused node
     *  ids, or cache key) -- the loss-free round-trip form is
     *  serialize::serializePlan()/parsePlan(), which guarantees the
     *  reparsed plan reproduces this dump byte for byte. */
    std::string toString() const;
};

} // namespace smartmem::runtime

#endif // SMARTMEM_RUNTIME_PLAN_H
