/**
 * @file
 * FunctionalRunner: executes an ExecutionPlan with real float math to
 * prove it computes the same function as the unoptimized graph.
 *
 * Eliminated layout-transformation chains are reproduced by
 * materializing each kernel input's IndexMap, exactly as the generated
 * kernel would compute addresses on device.  Integration tests compare
 * runPlanFunctional() against exec::Executor on the original graph.
 */
#ifndef SMARTMEM_RUNTIME_FUNCTIONAL_RUNNER_H
#define SMARTMEM_RUNTIME_FUNCTIONAL_RUNNER_H

#include <map>
#include <vector>

#include "exec/tensor.h"
#include "runtime/plan.h"

namespace smartmem::runtime {

/**
 * Execute the plan functionally.
 *
 * @param plan    The compiled plan.
 * @param inputs  Model input tensors keyed by input value id.
 * @param seed    Seed for synthesized constants; must match the seed
 *                used for the reference execution being compared to.
 * @return graph output tensors in declaration order.
 */
std::vector<exec::Tensor>
runPlanFunctional(const ExecutionPlan &plan,
                  const std::map<ir::ValueId, exec::Tensor> &inputs,
                  std::uint64_t seed = 1234);

/**
 * Structural validity check of a plan: every kernel input is available
 * when launched, fused nodes appear exactly once across kernels (and
 * eliminated ones nowhere), every graph output is materialized.
 * Panics on violations.
 */
void verifyPlan(const ExecutionPlan &plan);

} // namespace smartmem::runtime

#endif // SMARTMEM_RUNTIME_FUNCTIONAL_RUNNER_H
