#include "runtime/memory_pool.h"

#include <map>

#include "support/error.h"

namespace smartmem::runtime {

namespace {

/** Storage bytes of a value stored in the given layout. */
std::int64_t
storedBytes(const ir::Graph &graph, ir::ValueId id,
            const ir::Layout &layout)
{
    const ir::Value &v = graph.value(id);
    ir::Layout l = layout;
    if (l.rank() != v.shape.rank())
        l = ir::Layout::rowMajor(v.shape.rank());
    return l.storageElements(v.shape) * ir::dtypeSize(v.dtype);
}

} // namespace

MemoryStats
simulateMemory(const ExecutionPlan &plan)
{
    const ir::Graph &graph = plan.graph;
    MemoryStats stats;

    for (const ir::Node &n : graph.nodes()) {
        if (n.kind == ir::OpKind::Constant) {
            const ir::Value &v = graph.value(n.output);
            stats.constantBytes +=
                v.shape.numElements() * ir::dtypeSize(v.dtype);
        }
    }

    // Last kernel index using each stored (value, copy).
    using Key = std::pair<ir::ValueId, int>;
    std::map<Key, std::size_t> last_use;
    for (std::size_t i = 0; i < plan.kernels.size(); ++i) {
        for (const KernelInput &in : plan.kernels[i].inputs)
            last_use[{in.source, in.sourceCopy}] = i;
    }
    // Graph outputs stay live to the end.
    for (ir::ValueId id : graph.outputIds())
        last_use[{id, 0}] = plan.kernels.size();

    std::map<Key, std::int64_t> live; // bytes per live allocation
    std::int64_t live_bytes = 0;
    std::int64_t live_redundant = 0;

    for (std::size_t i = 0; i < plan.kernels.size(); ++i) {
        const Kernel &k = plan.kernels[i];
        std::int64_t bytes = storedBytes(graph, k.output, k.outLayout);
        Key key{k.output, k.copyIndex};
        if (live.find(key) == live.end()) {
            live[key] = bytes;
            live_bytes += bytes;
            stats.totalAllocatedBytes += bytes;
            if (k.copyIndex > 0)
                live_redundant += bytes;
        }
        stats.peakIntermediateBytes =
            std::max(stats.peakIntermediateBytes, live_bytes);
        stats.maxActiveRedundantCopyBytes =
            std::max(stats.maxActiveRedundantCopyBytes, live_redundant);

        // Release allocations whose last consumer has now run.
        for (auto it = live.begin(); it != live.end();) {
            auto lu = last_use.find(it->first);
            std::size_t last = lu == last_use.end() ? i : lu->second;
            if (last <= i) {
                live_bytes -= it->second;
                if (it->first.second > 0)
                    live_redundant -= it->second;
                it = live.erase(it);
            } else {
                ++it;
            }
        }
    }
    return stats;
}

bool
fitsDevice(const ExecutionPlan &plan, std::int64_t capacity_bytes,
           double headroom_fraction)
{
    MemoryStats stats = simulateMemory(plan);
    auto usable = static_cast<std::int64_t>(
        static_cast<double>(capacity_bytes) * (1.0 - headroom_fraction));
    return stats.peakTotalBytes() <= usable;
}

} // namespace smartmem::runtime
