#include "runtime/memory_pool.h"

#include <cstdlib>
#include <cstring>
#include <map>

#include "support/error.h"
#include "support/strings.h"

namespace smartmem::runtime {

namespace {

/** Storage bytes of a value stored in the given layout. */
std::int64_t
storedBytes(const ir::Graph &graph, ir::ValueId id,
            const ir::Layout &layout)
{
    const ir::Value &v = graph.value(id);
    ir::Layout l = layout;
    if (l.rank() != v.shape.rank())
        l = ir::Layout::rowMajor(v.shape.rank());
    return l.storageElements(v.shape) * ir::dtypeSize(v.dtype);
}

} // namespace

std::map<std::pair<ir::ValueId, int>, std::size_t>
lastUses(const ExecutionPlan &plan)
{
    std::map<std::pair<ir::ValueId, int>, std::size_t> last_use;
    for (std::size_t i = 0; i < plan.kernels.size(); ++i) {
        for (const KernelInput &in : plan.kernels[i].inputs)
            last_use[{in.source, in.sourceCopy}] = i;
    }
    // Graph outputs stay live to the end.
    for (ir::ValueId id : plan.graph.outputIds())
        last_use[{id, 0}] = plan.kernels.size();
    return last_use;
}

MemoryStats
simulateMemory(const ExecutionPlan &plan)
{
    const ir::Graph &graph = plan.graph;
    MemoryStats stats;

    for (const ir::Node &n : graph.nodes()) {
        if (n.kind == ir::OpKind::Constant) {
            const ir::Value &v = graph.value(n.output);
            stats.constantBytes +=
                v.shape.numElements() * ir::dtypeSize(v.dtype);
        }
    }

    using Key = std::pair<ir::ValueId, int>;
    const std::map<Key, std::size_t> last_use = lastUses(plan);

    std::map<Key, std::int64_t> live; // bytes per live allocation
    std::int64_t live_bytes = 0;
    std::int64_t live_redundant = 0;

    for (std::size_t i = 0; i < plan.kernels.size(); ++i) {
        const Kernel &k = plan.kernels[i];
        std::int64_t bytes = storedBytes(graph, k.output, k.outLayout);
        Key key{k.output, k.copyIndex};
        if (live.find(key) == live.end()) {
            live[key] = bytes;
            live_bytes += bytes;
            stats.totalAllocatedBytes += bytes;
            if (k.copyIndex > 0)
                live_redundant += bytes;
        }
        stats.peakIntermediateBytes =
            std::max(stats.peakIntermediateBytes, live_bytes);
        stats.maxActiveRedundantCopyBytes =
            std::max(stats.maxActiveRedundantCopyBytes, live_redundant);

        // Release allocations whose last consumer has now run.
        for (auto it = live.begin(); it != live.end();) {
            auto lu = last_use.find(it->first);
            std::size_t last = lu == last_use.end() ? i : lu->second;
            if (last <= i) {
                live_bytes -= it->second;
                if (it->first.second > 0)
                    live_redundant -= it->second;
                it = live.erase(it);
            } else {
                ++it;
            }
        }
    }
    return stats;
}

BufferPool::~BufferPool()
{
    for (auto &[p, bytes] : live_)
        std::free(p);
    for (auto &[bytes, ptrs] : free_)
        for (float *p : ptrs)
            std::free(p);
}

float *
BufferPool::allocateFloats(std::int64_t elems)
{
    SM_REQUIRE(elems > 0, "BufferPool: non-positive allocation");
    const std::int64_t bytes = roundUp(
        elems * static_cast<std::int64_t>(sizeof(float)),
        static_cast<std::int64_t>(kAlignment));

    float *p = nullptr;
    auto it = free_.find(bytes);
    if (it != free_.end() && !it->second.empty()) {
        // Recycled buffers keep their stale contents: every kernel
        // writes each element it later reads, so re-zeroing would be
        // a pure extra memory pass on the hot path.
        p = it->second.back();
        it->second.pop_back();
        ++reuseCount_;
    } else {
        // aligned_alloc requires the size to be a multiple of the
        // alignment; bytes is rounded up above.
        p = static_cast<float *>(std::aligned_alloc(
            kAlignment, static_cast<std::size_t>(bytes)));
        SM_REQUIRE(p != nullptr, "BufferPool: out of memory");
        std::memset(p, 0, static_cast<std::size_t>(bytes));
    }
    live_[p] = bytes;
    liveBytes_ += bytes;
    highWaterBytes_ = std::max(highWaterBytes_, liveBytes_);
    return p;
}

void
BufferPool::release(float *p)
{
    auto it = live_.find(p);
    SM_ASSERT(it != live_.end(),
              "BufferPool::release of unowned pointer");
    liveBytes_ -= it->second;
    free_[it->second].push_back(p);
    live_.erase(it);
}

bool
fitsDevice(const ExecutionPlan &plan, std::int64_t capacity_bytes,
           double headroom_fraction)
{
    MemoryStats stats = simulateMemory(plan);
    auto usable = static_cast<std::int64_t>(
        static_cast<double>(capacity_bytes) * (1.0 - headroom_fraction));
    return stats.peakTotalBytes() <= usable;
}

} // namespace smartmem::runtime
