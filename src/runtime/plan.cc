#include "runtime/plan.h"

#include <sstream>

namespace smartmem::runtime {

std::string
ExecutionPlan::toString() const
{
    std::ostringstream os;
    os << "plan[" << compilerName << "] " << kernels.size()
       << " kernels\n";
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        const Kernel &k = kernels[i];
        os << "  #" << i << " " << k.name;
        if (k.isLayoutCopy)
            os << " (layout-copy)";
        os << " -> %" << k.output << ":" << k.copyIndex << " "
           << k.outLayout.toString() << "\n";
        for (const KernelInput &in : k.inputs) {
            os << "      reads %" << in.source << ":" << in.sourceCopy
               << " as %" << in.substitute << " " << in.layout.toString();
            if (in.internalSource)
                os << " (internal)";
            if (in.readMap && !in.readMap->isIdentity())
                os << " via " << in.readMap->toString();
            os << "\n";
        }
        os << "      ops:";
        for (ir::NodeId n : k.fusedNodes)
            os << " " << ir::opKindName(graph.node(n).kind);
        os << "\n";
    }
    return os.str();
}

} // namespace smartmem::runtime
