/**
 * @file
 * Memory pool: liveness-based reuse of intermediate buffers, both as a
 * *simulation* (peak-footprint tracking and the redundant-copy
 * accounting of Section 4.6, e.g. Swin's 3.0 MB maximum active
 * redundant copies) and as a *real allocator* (BufferPool) backing the
 * CPU execution backend.
 *
 * Mirrors the paper's allocator: intermediates come from a pool and are
 * released back when no remaining consumer needs them; weights stay
 * resident for the whole run.
 */
#ifndef SMARTMEM_RUNTIME_MEMORY_POOL_H
#define SMARTMEM_RUNTIME_MEMORY_POOL_H

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "runtime/plan.h"

namespace smartmem::runtime {

/** Result of simulating plan memory behaviour. */
struct MemoryStats
{
    /** Peak bytes of live intermediates (pool high-water mark). */
    std::int64_t peakIntermediateBytes = 0;

    /** Sum of all intermediate allocations (no reuse). */
    std::int64_t totalAllocatedBytes = 0;

    /** Resident weight/constant bytes. */
    std::int64_t constantBytes = 0;

    /** Maximum bytes of redundant layout copies (copyIndex > 0) live at
     *  any point -- the Section 4.6 metric. */
    std::int64_t maxActiveRedundantCopyBytes = 0;

    /** peakIntermediateBytes + constantBytes. */
    std::int64_t peakTotalBytes() const
    {
        return peakIntermediateBytes + constantBytes;
    }
};

/** Simulate the pool over the kernel sequence. */
MemoryStats simulateMemory(const ExecutionPlan &plan);

/**
 * Index of the last kernel reading each stored (value, copy), the
 * liveness boundary both the simulation and the real executor release
 * buffers at.  Graph outputs map to plan.kernels.size() (live to the
 * end).  Stored values never read again do not appear; their producer
 * kernel's index is the release point.
 */
std::map<std::pair<ir::ValueId, int>, std::size_t>
lastUses(const ExecutionPlan &plan);

/**
 * Real buffer allocator for the CPU execution backend: every
 * allocation is 64-byte aligned (a full cache line, so buffers handed
 * to different pool workers can never false-share) and released
 * buffers are recycled by exact storage size, mirroring the
 * simulateMemory() liveness model.
 *
 * Not thread-safe: allocate/release are called from the coordinating
 * thread only; workers merely read/write the handed-out memory.
 */
class BufferPool
{
  public:
    /** Cache-line alignment of every allocation, in bytes. */
    static constexpr std::size_t kAlignment = 64;

    BufferPool() = default;
    ~BufferPool();

    BufferPool(const BufferPool &) = delete;
    BufferPool &operator=(const BufferPool &) = delete;

    /** 64-byte-aligned storage for `elems` floats; recycles a
     *  released buffer of the same rounded size if one is free.
     *  Fresh allocations are zero-filled; RECYCLED buffers keep
     *  their previous contents (callers overwrite every element they
     *  read -- re-zeroing the hot path would cost a full extra
     *  memory pass per buffer).  Fatal on non-positive sizes. */
    float *allocateFloats(std::int64_t elems);

    /** Return a buffer to the pool for reuse.  Must have come from
     *  allocateFloats() on this pool; panics otherwise. */
    void release(float *p);

    /** Bytes currently handed out (not counting free-list buffers). */
    std::int64_t liveBytes() const { return liveBytes_; }

    /** Peak of liveBytes() over the pool's lifetime -- the high-water
     *  mark simulateMemory() predicts as peakIntermediateBytes. */
    std::int64_t highWaterBytes() const { return highWaterBytes_; }

    /** Allocations served from the free list instead of fresh memory. */
    std::int64_t reuseCount() const { return reuseCount_; }

  private:
    std::map<float *, std::int64_t> live_;               // ptr -> bytes
    std::map<std::int64_t, std::vector<float *>> free_;  // bytes -> ptrs
    std::int64_t liveBytes_ = 0;
    std::int64_t highWaterBytes_ = 0;
    std::int64_t reuseCount_ = 0;
};

/**
 * True if the plan fits a device with the given capacity, leaving
 * `headroom_fraction` of capacity for the runtime itself.  Drives the
 * OOM gaps in Figures 10 and 11.
 */
bool fitsDevice(const ExecutionPlan &plan, std::int64_t capacity_bytes,
                double headroom_fraction = 0.25);

} // namespace smartmem::runtime

#endif // SMARTMEM_RUNTIME_MEMORY_POOL_H
