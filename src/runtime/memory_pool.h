/**
 * @file
 * Memory pool simulation: liveness-based reuse of intermediate buffers,
 * peak-footprint tracking, and the redundant-copy accounting of
 * Section 4.6 (e.g. Swin's 3.0 MB maximum active redundant copies).
 *
 * Mirrors the paper's allocator: intermediates come from a pool and are
 * released back when no remaining consumer needs them; weights stay
 * resident for the whole run.
 */
#ifndef SMARTMEM_RUNTIME_MEMORY_POOL_H
#define SMARTMEM_RUNTIME_MEMORY_POOL_H

#include <cstdint>

#include "runtime/plan.h"

namespace smartmem::runtime {

/** Result of simulating plan memory behaviour. */
struct MemoryStats
{
    /** Peak bytes of live intermediates (pool high-water mark). */
    std::int64_t peakIntermediateBytes = 0;

    /** Sum of all intermediate allocations (no reuse). */
    std::int64_t totalAllocatedBytes = 0;

    /** Resident weight/constant bytes. */
    std::int64_t constantBytes = 0;

    /** Maximum bytes of redundant layout copies (copyIndex > 0) live at
     *  any point -- the Section 4.6 metric. */
    std::int64_t maxActiveRedundantCopyBytes = 0;

    /** peakIntermediateBytes + constantBytes. */
    std::int64_t peakTotalBytes() const
    {
        return peakIntermediateBytes + constantBytes;
    }
};

/** Simulate the pool over the kernel sequence. */
MemoryStats simulateMemory(const ExecutionPlan &plan);

/**
 * True if the plan fits a device with the given capacity, leaving
 * `headroom_fraction` of capacity for the runtime itself.  Drives the
 * OOM gaps in Figures 10 and 11.
 */
bool fitsDevice(const ExecutionPlan &plan, std::int64_t capacity_bytes,
                double headroom_fraction = 0.25);

} // namespace smartmem::runtime

#endif // SMARTMEM_RUNTIME_MEMORY_POOL_H
