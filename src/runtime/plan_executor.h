/**
 * @file
 * Backend selection for plan execution: one name-keyed factory over
 * every engine that can run an ExecutionPlan with real float math,
 * following the DeviceRegistry/CompilerRegistry idiom (unknown names
 * raise a FatalError listing what is registered).
 *
 * Registered backends:
 *   "reference"    -- the functional runner (runPlanFunctional):
 *                     naive scalar kernels, correctness baseline.
 *   "cpu-blocked"  -- exec::CpuBackend: layout-aware, cache-blocked,
 *                     thread-pooled kernels (docs/EXECUTION.md).
 *
 * Both backends compute the same function (tests pin parity to 1e-4
 * relative tolerance across the model zoo), so callers choose purely
 * on speed: FunctionalRunner-style verification uses "reference",
 * `smartmem_cli run` and bench_exec_throughput default to
 * "cpu-blocked".
 */
#ifndef SMARTMEM_RUNTIME_PLAN_EXECUTOR_H
#define SMARTMEM_RUNTIME_PLAN_EXECUTOR_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/tensor.h"
#include "runtime/plan.h"

namespace smartmem::runtime {

/** Options shared by every execution backend. */
struct ExecutorOptions
{
    /** Worker threads; 0 = SMARTMEM_THREADS env / hardware default.
     *  The reference backend is always serial. */
    int threads = 0;

    /** Seed for synthesized constants; executions to be compared must
     *  use the same seed. */
    std::uint64_t seed = 1234;

    /** GEMM tile parameters for the cpu-blocked backend, usually from
     *  exec::resolveTileParams() on the target's DeviceProfile; 0 =
     *  kernel defaults.  The reference backend ignores them. */
    std::int64_t gemmRowTile = 0;
    std::int64_t gemmKBlock = 0;
};

/** A plan execution engine. */
class PlanExecutor
{
  public:
    virtual ~PlanExecutor() = default;

    /** Registry name of this backend. */
    virtual const std::string &name() const = 0;

    /** Execute the plan; returns graph outputs in declaration order,
     *  row-major. */
    virtual std::vector<exec::Tensor>
    run(const ExecutionPlan &plan,
        const std::map<ir::ValueId, exec::Tensor> &inputs) = 0;

    /** Peak bytes of pooled buffers in the most recent run(); 0 for
     *  backends without a real allocator (reference). */
    virtual std::int64_t poolHighWaterBytes() const { return 0; }

    /** Streaming fused-attention launches in the most recent run();
     *  0 for backends without the streaming kernel (reference). */
    virtual int fusedAttentionKernels() const { return 0; }

    /** Score-matrix bytes those launches avoided materializing. */
    virtual std::int64_t scoreBytesAvoided() const { return 0; }
};

/** Registered backend names, in registry order. */
const std::vector<std::string> &executorNames();

/**
 * Construct a backend by name.  Throws FatalError for unknown names,
 * listing the registered backends -- the same contract as
 * DeviceRegistry::find().
 */
std::unique_ptr<PlanExecutor>
makeExecutor(const std::string &name,
             const ExecutorOptions &options = ExecutorOptions());

} // namespace smartmem::runtime

#endif // SMARTMEM_RUNTIME_PLAN_EXECUTOR_H
