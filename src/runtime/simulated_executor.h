/**
 * @file
 * SimulatedExecutor: runs an ExecutionPlan against a device profile,
 * combining the analytic cost model with the memory-pool simulation.
 * This is the measurement harness behind every latency table.
 */
#ifndef SMARTMEM_RUNTIME_SIMULATED_EXECUTOR_H
#define SMARTMEM_RUNTIME_SIMULATED_EXECUTOR_H

#include "cost/kernel_cost.h"
#include "device/device_profile.h"
#include "runtime/memory_pool.h"
#include "runtime/plan.h"

namespace smartmem::runtime {

/** Outcome of simulating one plan on one device. */
struct SimResult
{
    cost::PlanCost cost;
    MemoryStats memory;

    /** False when the plan exceeds device memory (OOM bars in
     *  Figures 10/11). */
    bool fits = true;

    double latencyMs() const { return cost.latencyMs(); }
    double gmacs() const { return cost.gmacs(); }
};

/** Simulate the plan; verifies the plan structure first. */
SimResult simulate(const device::DeviceProfile &dev,
                   const ExecutionPlan &plan);

} // namespace smartmem::runtime

#endif // SMARTMEM_RUNTIME_SIMULATED_EXECUTOR_H
