#include "runtime/simulated_executor.h"

#include "runtime/functional_runner.h"

namespace smartmem::runtime {

SimResult
simulate(const device::DeviceProfile &dev, const ExecutionPlan &plan)
{
    verifyPlan(plan);
    SimResult r;
    r.cost = cost::costPlan(dev, plan);
    r.memory = simulateMemory(plan);
    r.fits = fitsDevice(plan, dev.memoryCapacityBytes);
    return r;
}

} // namespace smartmem::runtime
