#include "runtime/functional_runner.h"

#include <set>

#include "exec/executor.h"
#include "support/error.h"

namespace smartmem::runtime {

using exec::Tensor;

namespace {

/** Materialize `map` applied to `src`. */
Tensor
materializeMap(const index::IndexMap &map, const Tensor &src)
{
    SM_ASSERT(map.inputShape() == src.shape(),
              "index map input shape mismatch");
    Tensor out(map.outputShape());
    exec::forEachCoord(map.outputShape(),
                       [&](const std::vector<std::int64_t> &coord) {
        out.at(coord) = src.at(map.apply(coord));
    });
    return out;
}

} // namespace

std::vector<Tensor>
runPlanFunctional(const ExecutionPlan &plan,
                  const std::map<ir::ValueId, Tensor> &inputs,
                  std::uint64_t seed)
{
    const ir::Graph &graph = plan.graph;
    exec::Executor ex(seed);

    std::map<ir::ValueId, Tensor> env;
    for (const ir::Node &node : graph.nodes()) {
        if (node.kind == ir::OpKind::Input) {
            auto it = inputs.find(node.output);
            SM_REQUIRE(it != inputs.end(),
                       "missing model input: " + node.name);
            env[node.output] = it->second;
        } else if (node.kind == ir::OpKind::Constant) {
            env[node.output] = ex.synthesizeConstant(graph, node.output);
        }
    }

    for (const Kernel &k : plan.kernels) {
        // Reproduce eliminated chains through the read maps.  Inputs
        // whose source is produced by an earlier fused node of this
        // kernel are materialized as soon as the source exists.
        auto materialize_ready = [&]() {
            for (const KernelInput &in : k.inputs) {
                if (in.substitute == in.source)
                    continue;
                if (env.count(in.substitute) > 0)
                    continue;
                auto src = env.find(in.source);
                if (src == env.end())
                    continue;
                SM_ASSERT(in.readMap.has_value(),
                          "substituted input without a read map");
                env[in.substitute] =
                    materializeMap(*in.readMap, src->second);
            }
        };
        materialize_ready();
        // A pure relayout copy of an existing value computes nothing.
        if (k.fusedNodes.empty()) {
            SM_ASSERT(k.isLayoutCopy, "empty kernel must be layout copy");
            SM_ASSERT(env.count(k.output) > 0,
                      "layout copy of unmaterialized value");
            continue;
        }
        for (ir::NodeId nid : k.fusedNodes) {
            const ir::Node &node = graph.node(nid);
            std::vector<const Tensor *> in_ptrs;
            for (ir::ValueId vin : node.inputs) {
                auto it = env.find(vin);
                SM_ASSERT(it != env.end(),
                          "fused node input not available: node " +
                          node.name);
                in_ptrs.push_back(&it->second);
            }
            env[node.output] = exec::evalNode(graph, node, in_ptrs);
            materialize_ready();
        }
    }

    std::vector<Tensor> out;
    for (ir::ValueId id : graph.outputIds()) {
        auto it = env.find(id);
        SM_REQUIRE(it != env.end(), "plan did not materialize an output");
        out.push_back(it->second);
    }
    return out;
}

void
verifyPlan(const ExecutionPlan &plan)
{
    const ir::Graph &graph = plan.graph;

    // Values available before any kernel runs.
    std::set<ir::ValueId> available;
    for (const ir::Node &n : graph.nodes()) {
        if (n.kind == ir::OpKind::Input || n.kind == ir::OpKind::Constant)
            available.insert(n.output);
    }

    std::set<ir::NodeId> executed;
    for (const Kernel &k : plan.kernels) {
        std::set<ir::ValueId> local = available;
        auto admit_ready = [&]() {
            for (const KernelInput &in : k.inputs) {
                if (local.count(in.source) > 0)
                    local.insert(in.substitute);
            }
        };
        for (const KernelInput &in : k.inputs) {
            if (in.internalSource) {
                bool produced_here = false;
                for (ir::NodeId nid : k.fusedNodes) {
                    if (graph.node(nid).output == in.source)
                        produced_here = true;
                }
                SM_ASSERT(produced_here,
                          "internal-source input not produced in " +
                          k.name);
            } else {
                SM_ASSERT(available.count(in.source) > 0,
                          "kernel " + k.name + " reads unavailable value");
            }
            if (in.substitute != in.source) {
                SM_ASSERT(in.readMap.has_value(),
                          "substitute without read map in " + k.name);
                SM_ASSERT(in.readMap->inputShape() ==
                          graph.value(in.source).shape,
                          "read map domain mismatch in " + k.name);
                SM_ASSERT(in.readMap->outputShape() ==
                          graph.value(in.substitute).shape,
                          "read map range mismatch in " + k.name);
            }
        }
        admit_ready();
        for (ir::NodeId nid : k.fusedNodes) {
            const ir::Node &node = graph.node(nid);
            SM_ASSERT(executed.count(nid) == 0,
                      "node fused into two kernels: " + node.name);
            executed.insert(nid);
            for (ir::ValueId vin : node.inputs) {
                SM_ASSERT(local.count(vin) > 0,
                          "fused node input not available in " + k.name +
                          ": " + node.name);
            }
            local.insert(node.output);
            admit_ready();
        }
        if (!k.fusedNodes.empty()) {
            SM_ASSERT(local.count(k.output) > 0,
                      "kernel output not produced: " + k.name);
        } else {
            SM_ASSERT(k.isLayoutCopy && available.count(k.output) > 0,
                      "empty kernel must relayout an available value");
        }
        available.insert(k.output);
    }
    for (ir::ValueId id : graph.outputIds()) {
        SM_ASSERT(available.count(id) > 0,
                  "graph output never materialized");
    }
}

} // namespace smartmem::runtime
