#include "runtime/plan_executor.h"

#include "exec/cpu_backend.h"
#include "runtime/functional_runner.h"
#include "support/error.h"
#include "support/strings.h"

namespace smartmem::runtime {

namespace {

class ReferenceExecutor final : public PlanExecutor
{
  public:
    explicit ReferenceExecutor(const ExecutorOptions &opts)
        : seed_(opts.seed)
    {
    }

    const std::string &name() const override
    {
        static const std::string n = "reference";
        return n;
    }

    std::vector<exec::Tensor>
    run(const ExecutionPlan &plan,
        const std::map<ir::ValueId, exec::Tensor> &inputs) override
    {
        return runPlanFunctional(plan, inputs, seed_);
    }

  private:
    std::uint64_t seed_;
};

class CpuBlockedExecutor final : public PlanExecutor
{
  public:
    explicit CpuBlockedExecutor(const ExecutorOptions &opts)
    {
        exec::CpuBackendOptions o;
        o.threads = opts.threads;
        o.seed = opts.seed;
        o.gemmRowTile = opts.gemmRowTile;
        o.gemmKBlock = opts.gemmKBlock;
        backend_ = exec::CpuBackend(o);
    }

    const std::string &name() const override
    {
        static const std::string n = "cpu-blocked";
        return n;
    }

    std::vector<exec::Tensor>
    run(const ExecutionPlan &plan,
        const std::map<ir::ValueId, exec::Tensor> &inputs) override
    {
        return backend_.run(plan, inputs, &stats_);
    }

    std::int64_t poolHighWaterBytes() const override
    {
        return stats_.poolHighWaterBytes;
    }

    int fusedAttentionKernels() const override
    {
        return stats_.fusedAttentionKernels;
    }

    std::int64_t scoreBytesAvoided() const override
    {
        return stats_.scoreBytesAvoided;
    }

    /** Full counters of the most recent run. */
    const exec::CpuBackendStats &stats() const { return stats_; }

  private:
    exec::CpuBackend backend_{exec::CpuBackendOptions{}};
    exec::CpuBackendStats stats_;
};

} // namespace

const std::vector<std::string> &
executorNames()
{
    static const std::vector<std::string> names = {"reference",
                                                   "cpu-blocked"};
    return names;
}

std::unique_ptr<PlanExecutor>
makeExecutor(const std::string &name, const ExecutorOptions &options)
{
    if (name == "reference")
        return std::make_unique<ReferenceExecutor>(options);
    if (name == "cpu-blocked")
        return std::make_unique<CpuBlockedExecutor>(options);
    smFatal("unknown execution backend '" + name +
            "' (registered: " + joinStrings(executorNames(), ", ") +
            ")");
}

} // namespace smartmem::runtime
