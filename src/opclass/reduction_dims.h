/**
 * @file
 * Reduction-dimension analysis (paper Section 3.2.2).
 *
 * The reduction dimension(s) of an operand are the dimensions along
 * which elements are aggregated (e.g. K for both MatMul operands, the
 * input-channel dim for Conv).  SmartMem's layout selection heuristic
 * stores data contiguously along the consumer's reduction dimension;
 * the cost model uses the same analysis to decide each kernel's
 * preferred iteration order.
 */
#ifndef SMARTMEM_OPCLASS_REDUCTION_DIMS_H
#define SMARTMEM_OPCLASS_REDUCTION_DIMS_H

#include <vector>

#include "ir/graph.h"

namespace smartmem::opclass {

/**
 * Reduction dimensions of input operand `input_idx` of `node`,
 * expressed as logical dimension indices of that operand.  Empty for
 * operands with no aggregation (element-wise consumers).
 */
std::vector<int> reductionDims(const ir::Graph &graph,
                               const ir::Node &node, int input_idx);

/**
 * The dimension a consumer most wants contiguous for operand
 * `input_idx`: the first reduction dimension, or the innermost logical
 * dimension when there is none.
 */
int preferredContiguousDim(const ir::Graph &graph, const ir::Node &node,
                           int input_idx);

} // namespace smartmem::opclass

#endif // SMARTMEM_OPCLASS_REDUCTION_DIMS_H
