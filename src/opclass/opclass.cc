#include "opclass/opclass.h"

#include "support/error.h"

namespace smartmem::opclass {

using ir::OpKind;

OpClass
classifyOp(OpKind kind)
{
    switch (kind) {
      // Compute with temporal reuse and/or reduction: performance depends
      // on input layout, output order can be chosen by the implementation.
      case OpKind::Conv2d:
      case OpKind::DepthwiseConv2d:
      case OpKind::GroupConv2d:
      case OpKind::MatMul:
      case OpKind::BatchMatMul:
      case OpKind::LayerNorm:
      case OpKind::InstanceNorm:
      case OpKind::Softmax:
      case OpKind::ReduceSum:
      case OpKind::ReduceMean:
      case OpKind::ReduceMax:
      case OpKind::MaxPool2d:
      case OpKind::AvgPool2d:
      case OpKind::GlobalAvgPool:
      case OpKind::FusedAttention:
        return ildVariable;

      // Element-wise: touches each element once, any layout works, and
      // the output order is free.  Inference-mode BatchNorm is a folded
      // per-channel affine transform, i.e. element-wise.
      case OpKind::BatchNorm:
      case OpKind::Relu:
      case OpKind::Gelu:
      case OpKind::Silu:
      case OpKind::Sigmoid:
      case OpKind::Tanh:
      case OpKind::Exp:
      case OpKind::Sqrt:
      case OpKind::Neg:
      case OpKind::Identity:
      case OpKind::Scale:
      case OpKind::Add:
      case OpKind::Sub:
      case OpKind::Mul:
      case OpKind::Div:
        return iliVariable;

      // Layout transformations: performance sensitive to the input
      // layout (they move memory), output layout fixed by definition.
      case OpKind::Reshape:
      case OpKind::Transpose:
      case OpKind::DepthToSpace:
      case OpKind::SpaceToDepth:
        return ildFixed;

      // Selection: layout-insensitive, output layout tied to input.
      case OpKind::Gather:
      case OpKind::Slice:
      case OpKind::Concat:
      case OpKind::Pad:
        return iliFixed;

      case OpKind::Input:
      case OpKind::Constant:
        // Terminals are treated as layout-independent fixed sources.
        return iliFixed;
    }
    smPanic("unhandled op kind in classifyOp");
}

std::string
opClassName(OpClass c)
{
    std::string s = c.dep == LayoutDep::Dependent ? "ILD" : "ILI";
    s += " & ";
    s += c.flex == OutputFlex::Variable ? "Variable" : "Fixed";
    return s;
}

PairAction
combinationAction(OpClass first, OpClass second)
{
    const bool first_fixed = first.flex == OutputFlex::Fixed;
    const bool second_fixed = second.flex == OutputFlex::Fixed;
    if (first_fixed && second_fixed)
        return PairAction::EliminateBoth;
    if (first_fixed)
        return PairAction::EliminateFirst;
    if (second_fixed)
        return PairAction::EliminateSecond;
    // Both Variable.
    if (first.dep == LayoutDep::Dependent &&
        second.dep == LayoutDep::Dependent)
        return PairAction::KeepBoth;
    return PairAction::TryFuse;
}

std::string
pairActionName(PairAction a)
{
    switch (a) {
      case PairAction::KeepBoth:        return "Keep both";
      case PairAction::TryFuse:         return "Try fuse";
      case PairAction::EliminateSecond: return "Eliminate 2nd";
      case PairAction::EliminateFirst:  return "Eliminate 1st";
      case PairAction::EliminateBoth:   return "Eliminate both";
    }
    return "?";
}

OpClass
combinedType(OpClass first, OpClass second)
{
    // The preserved operator keeps the type of the higher-complexity
    // operand: ILD dominates ILI; Variable operands are the survivors.
    const bool first_fixed = first.flex == OutputFlex::Fixed;
    const bool second_fixed = second.flex == OutputFlex::Fixed;
    if (first_fixed && second_fixed) {
        // Both eliminated; nothing survives.  Report ILI&Fixed as the
        // degenerate "no remaining constraint" type.
        return iliFixed;
    }
    if (first_fixed)
        return second; // second survives
    if (second_fixed)
        return first; // first survives
    // Fused pair: ILD wins over ILI.
    if (first.dep == LayoutDep::Dependent ||
        second.dep == LayoutDep::Dependent)
        return ildVariable;
    return iliVariable;
}

SearchPolicy
searchPolicy(OpClass first, OpClass second)
{
    // Layout search only happens around ILD & Variable operators
    // (Table 6): they are the ones whose performance hinges on layout.
    const bool first_ildv = first == ildVariable;
    const bool second_ildv = second == ildVariable;
    const bool first_fixed = first.flex == OutputFlex::Fixed;
    const bool second_fixed = second.flex == OutputFlex::Fixed;

    if (first_ildv && second_ildv)
        return SearchPolicy::SearchBoth;
    if (first_ildv && second.flex == OutputFlex::Variable)
        return SearchPolicy::SearchFused; // fused with an ILI&Var
    if (second_ildv && first.flex == OutputFlex::Variable)
        return SearchPolicy::SearchFused;
    if (first_ildv && second_fixed)
        return SearchPolicy::SearchFirst; // 2nd eliminated, search 1st
    if (second_ildv && first_fixed)
        return SearchPolicy::SearchSecond; // 1st eliminated, search 2nd
    return SearchPolicy::NoSearch;
}

std::string
searchPolicyName(SearchPolicy p)
{
    switch (p) {
      case SearchPolicy::SearchBoth:   return "Search both";
      case SearchPolicy::SearchFused:  return "Search fused";
      case SearchPolicy::SearchFirst:  return "Search 1st";
      case SearchPolicy::SearchSecond: return "Search 2nd";
      case SearchPolicy::NoSearch:     return "No search";
    }
    return "?";
}

} // namespace smartmem::opclass
