/**
 * @file
 * SmartMem's operator classification (paper Section 3.1, Tables 3-6).
 *
 * Every operator is placed in one of four quadrants along two axes:
 *   - does computation performance depend on the *input layout*?
 *     (ILD = Input Layout Dependent, ILI = Input Layout Independent)
 *   - is the *output layout* customizable (Variable) or determined by
 *     the operator's definition (Fixed)?
 *
 * The pairwise producer->consumer action table (Table 5) and the
 * resulting-type / layout-search table (Table 6) drive the Layout
 * Transformation Elimination pass.
 */
#ifndef SMARTMEM_OPCLASS_OPCLASS_H
#define SMARTMEM_OPCLASS_OPCLASS_H

#include <string>

#include "ir/op_kind.h"

namespace smartmem::opclass {

/** Input-layout sensitivity of an operator's computation. */
enum class LayoutDep { Dependent, Independent };

/** Output-layout customizability. */
enum class OutputFlex { Variable, Fixed };

/** One quadrant of Table 3. */
struct OpClass
{
    LayoutDep dep = LayoutDep::Independent;
    OutputFlex flex = OutputFlex::Variable;

    bool operator==(const OpClass &o) const
    {
        return dep == o.dep && flex == o.flex;
    }
};

constexpr OpClass ildVariable{LayoutDep::Dependent, OutputFlex::Variable};
constexpr OpClass iliVariable{LayoutDep::Independent, OutputFlex::Variable};
constexpr OpClass ildFixed{LayoutDep::Dependent, OutputFlex::Fixed};
constexpr OpClass iliFixed{LayoutDep::Independent, OutputFlex::Fixed};

/** Classify an operator kind into its quadrant (Table 3). */
OpClass classifyOp(ir::OpKind kind);

/** "ILD & Variable" etc. */
std::string opClassName(OpClass c);

/**
 * Action for a producer(first) -> consumer(second) edge (Table 5).
 * "Eliminate" means replace the operator by index computation folded
 * into the surviving operator (Section 3.2.1).
 */
enum class PairAction {
    KeepBoth,
    TryFuse,
    EliminateSecond,
    EliminateFirst,
    EliminateBoth,
};

PairAction combinationAction(OpClass first, OpClass second);
std::string pairActionName(PairAction a);

/**
 * Resulting operator type after the computation optimization of a pair
 * (Table 6): the preserved/fused operator takes the type of the operand
 * with higher optimization complexity.
 */
OpClass combinedType(OpClass first, OpClass second);

/** Layout search policy after the optimization (Table 6 colors). */
enum class SearchPolicy {
    SearchBoth,
    SearchFused,
    SearchFirst,
    SearchSecond,
    NoSearch,
};

SearchPolicy searchPolicy(OpClass first, OpClass second);
std::string searchPolicyName(SearchPolicy p);

} // namespace smartmem::opclass

#endif // SMARTMEM_OPCLASS_OPCLASS_H
