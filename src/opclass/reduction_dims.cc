#include "opclass/reduction_dims.h"

#include "support/error.h"

namespace smartmem::opclass {

using ir::OpKind;

std::vector<int>
reductionDims(const ir::Graph &graph, const ir::Node &node, int input_idx)
{
    const ir::Shape &in =
        graph.value(node.inputs[static_cast<std::size_t>(input_idx)]).shape;
    switch (node.kind) {
      case OpKind::Conv2d:
      case OpKind::GroupConv2d:
        // x: aggregate over input channels (dim 1) and the window.
        // w (OIHW): aggregate over I, KH, KW.
        return input_idx == 0 ? std::vector<int>{1}
                              : std::vector<int>{1, 2, 3};
      case OpKind::DepthwiseConv2d:
        // Per-channel window aggregation only.
        return input_idx == 0 ? std::vector<int>{2, 3}
                              : std::vector<int>{2, 3};
      case OpKind::MatMul:
      case OpKind::BatchMatMul: {
        bool trans_b = node.attrs.getInt("transB", 0) != 0;
        if (input_idx == 0)
            return {in.rank() - 1}; // K is A's last dim
        // B: K is the second-to-last dim, or last when transposed.
        return {trans_b ? in.rank() - 1 : in.rank() - 2};
      }
      case OpKind::LayerNorm:
        return input_idx == 0 ? std::vector<int>{in.rank() - 1}
                              : std::vector<int>{};
      case OpKind::InstanceNorm:
        return {2, 3};
      case OpKind::Softmax: {
        int axis = static_cast<int>(
            node.attrs.getInt("axis", in.rank() - 1));
        if (axis < 0)
            axis += in.rank();
        return {axis};
      }
      case OpKind::ReduceSum:
      case OpKind::ReduceMean:
      case OpKind::ReduceMax: {
        if (input_idx != 0)
            return {};
        std::vector<int> out;
        for (auto a : node.attrs.getInts("axes"))
            out.push_back(static_cast<int>(a));
        return out;
      }
      case OpKind::MaxPool2d:
      case OpKind::AvgPool2d:
      case OpKind::GlobalAvgPool:
        return {2, 3};
      case OpKind::FusedAttention:
        // Q aggregates over dk (last dim); K over dk (last dim); V over
        // the context length M (rank-2 dim); the bias is read-only.
        if (input_idx == 0 || input_idx == 1)
            return {in.rank() - 1};
        if (input_idx == 2)
            return {in.rank() - 2};
        return {};
      default:
        return {};
    }
}

int
preferredContiguousDim(const ir::Graph &graph, const ir::Node &node,
                       int input_idx)
{
    auto dims = reductionDims(graph, node, input_idx);
    if (!dims.empty())
        return dims.front();
    const ir::Shape &in =
        graph.value(node.inputs[static_cast<std::size_t>(input_idx)]).shape;
    return in.rank() - 1;
}

} // namespace smartmem::opclass
