/**
 * @file
 * Dense float tensors for the functional reference executor.
 *
 * Storage is always row-major over the logical shape: the functional
 * executor defines *semantics* only.  Physical layouts affect the cost
 * model and simulated executor, never numerical results; tests rely on
 * this separation to prove optimizations semantics-preserving.
 */
#ifndef SMARTMEM_EXEC_TENSOR_H
#define SMARTMEM_EXEC_TENSOR_H

#include <vector>

#include "ir/shape.h"

namespace smartmem::exec {

/** Dense row-major float tensor. */
class Tensor
{
  public:
    Tensor() = default;
    explicit Tensor(const ir::Shape &shape)
        : shape_(shape),
          data_(static_cast<std::size_t>(shape.numElements()), 0.0f) {}

    const ir::Shape &shape() const { return shape_; }
    std::int64_t numElements() const { return shape_.numElements(); }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    float &at(std::int64_t linear)
    {
        return data_[static_cast<std::size_t>(linear)];
    }
    float at(std::int64_t linear) const
    {
        return data_[static_cast<std::size_t>(linear)];
    }

    float &at(const std::vector<std::int64_t> &coord)
    {
        return at(ir::linearize(coord, shape_));
    }
    float at(const std::vector<std::int64_t> &coord) const
    {
        return at(ir::linearize(coord, shape_));
    }

  private:
    ir::Shape shape_;
    std::vector<float> data_;
};

/**
 * Iterate all coordinates of a shape in row-major order, invoking
 * fn(coord).  Shared loop used by the naive kernels.
 */
template <typename Fn>
void
forEachCoord(const ir::Shape &shape, Fn &&fn)
{
    std::vector<std::int64_t> coord(
        static_cast<std::size_t>(shape.rank()), 0);
    const std::int64_t total = shape.numElements();
    for (std::int64_t i = 0; i < total; ++i) {
        fn(coord);
        // Increment odometer.
        for (int d = shape.rank() - 1; d >= 0; --d) {
            auto di = static_cast<std::size_t>(d);
            if (++coord[di] < shape.dim(d))
                break;
            coord[di] = 0;
        }
    }
}

/** Max |a-b| over two same-shaped tensors. */
float maxAbsDiff(const Tensor &a, const Tensor &b);

} // namespace smartmem::exec

#endif // SMARTMEM_EXEC_TENSOR_H
