/**
 * @file
 * Plan-driven high-performance CPU execution backend.
 *
 * Unlike the reference executor (which walks the original graph) and
 * the functional runner (which replays a plan with the naive kernels),
 * CpuBackend executes the ExecutionPlan the way a device runtime
 * would:
 *
 *  - it launches the plan's fused kernels, not raw graph nodes;
 *  - every stored buffer is materialized in the plan's *chosen*
 *    physical layout (Layout::strides semantics, including vec4
 *    packing and texture storage order), from 64-byte-aligned
 *    allocations of a runtime::BufferPool reused by liveness;
 *  - operators eliminated by Layout Transformation Elimination are
 *    never executed: the consuming kernel reads through the composed
 *    IndexMap (one materialization per surviving chain, instead of
 *    one copy per eliminated operator);
 *  - compute runs on cache-blocked/tiled kernels (kernels_blocked.h)
 *    with fused element-wise epilogues, parallelized over batch /
 *    output tiles on a fixed support::ThreadPool.
 *
 * Results are byte-identical at every thread count (static work
 * partitioning; each output element is produced by exactly one task
 * in a fixed arithmetic order) and match the reference executor
 * within 1e-4 relative tolerance (tests/cpu_backend_test.cc pins
 * both across the model zoo).
 */
#ifndef SMARTMEM_EXEC_CPU_BACKEND_H
#define SMARTMEM_EXEC_CPU_BACKEND_H

#include <cstdint>
#include <map>
#include <vector>

#include "exec/simd_dispatch.h"
#include "exec/tensor.h"
#include "runtime/plan.h"

namespace smartmem::exec {

/** Knobs for a CpuBackend instance. */
struct CpuBackendOptions
{
    /** Worker threads; 0 = SMARTMEM_THREADS env / hardware default,
     *  1 = fully serial. */
    int threads = 0;

    /** Seed for synthesized constants; must match the seed of the
     *  reference execution being compared against. */
    std::uint64_t seed = 1234;

    /** GEMM tile overrides, usually from exec::resolveTileParams() on
     *  a device profile; 0 = the kernels' built-in defaults. */
    std::int64_t gemmRowTile = 0;
    std::int64_t gemmKBlock = 0;
};

/** Counters from the most recent CpuBackend::run(). */
struct CpuBackendStats
{
    /** Kernels launched (= plan.operatorCount()). */
    int kernelsExecuted = 0;

    /** Explicit relayout kernels among them (data movement only). */
    int relayoutKernels = 0;

    /** Element-wise ops folded into a producer's fused epilogue pass
     *  instead of running as their own pass. */
    int fusedEpilogueOps = 0;

    /** Eliminated-chain reads reproduced via composed IndexMaps. */
    int substitutesMaterialized = 0;

    /** Bytes moved by layout packing/unpacking and relayout copies --
     *  the transformation work the plan did NOT eliminate. */
    std::int64_t bytesRelayouted = 0;

    /** BufferPool high-water mark (intermediates + constants). */
    std::int64_t poolHighWaterBytes = 0;

    /** BufferPool allocations served by reuse. */
    std::int64_t poolReuses = 0;

    /** Stored packed/texture operands consumed in place by GEMM/conv
     *  micro-kernels (no unpack copy). */
    int nativeLayoutViews = 0;

    /** Kernel outputs written directly in the plan's chosen layout
     *  (no pack copy in publishOutput). */
    int nativeLayoutStores = 0;

    /** FusedAttention launches that ran the streaming online-softmax
     *  kernel (Kernel::streamingAttention set). */
    int fusedAttentionKernels = 0;

    /** Score-matrix bytes those launches never materialized: the
     *  [batch, n, m] float panel a matmul+softmax+matmul chain would
     *  have written and re-read. */
    std::int64_t scoreBytesAvoided = 0;

    /** SIMD dispatch level the run executed at. */
    SimdLevel simdLevel = SimdLevel::Scalar;

    /** Resolved GEMM tile parameters the run used. */
    std::int64_t tileRowTile = 0;
    std::int64_t tileKBlock = 0;
};

/** Plan-consuming blocked CPU executor (see file header). */
class CpuBackend
{
  public:
    explicit CpuBackend(CpuBackendOptions options = CpuBackendOptions());

    /**
     * Execute the plan on the given model inputs (keyed by input value
     * id, row-major).  Returns the graph outputs in declaration order,
     * row-major.  `stats`, when non-null, receives the run's counters.
     */
    std::vector<Tensor>
    run(const runtime::ExecutionPlan &plan,
        const std::map<ir::ValueId, Tensor> &inputs,
        CpuBackendStats *stats = nullptr) const;

    const CpuBackendOptions &options() const { return options_; }

  private:
    CpuBackendOptions options_;
};

} // namespace smartmem::exec

#endif // SMARTMEM_EXEC_CPU_BACKEND_H
