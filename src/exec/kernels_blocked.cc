#include "exec/kernels_blocked.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <exception>
#include <future>
#include <vector>

#include "device/device_profile.h"
#include "runtime/memory_pool.h"
#include "support/error.h"

#if SMARTMEM_SIMD_X86
#include <immintrin.h>
#endif
#if SMARTMEM_SIMD_NEON
#include <arm_neon.h>
#endif

namespace smartmem::exec {

// -------------------------------------------------------------------
// ParallelRunner
// -------------------------------------------------------------------

ParallelRunner::ParallelRunner(int threads)
{
    threads_ = threads > 0 ? threads : support::defaultThreadCount();
    threads_ = std::max(threads_, 1);
    if (threads_ > 1)
        pool_ = std::make_unique<support::ThreadPool>(threads_ - 1);
}

ParallelRunner::~ParallelRunner() = default;

void
ParallelRunner::run(std::int64_t n, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>
                        &fn) const
{
    if (n <= 0)
        return;
    grain = std::max<std::int64_t>(grain, 1);
    const std::int64_t max_chunks = std::max<std::int64_t>(
        std::min<std::int64_t>(threads_, (n + grain - 1) / grain), 1);
    if (max_chunks == 1 || !pool_) {
        fn(0, n);
        return;
    }
    // Static partition: chunk boundaries depend only on (n, chunks),
    // so every element is processed by the same chunk at any thread
    // count -- the backend's determinism guarantee.
    std::vector<std::future<void>> futures;
    futures.reserve(static_cast<std::size_t>(max_chunks) - 1);
    const std::int64_t base = n / max_chunks;
    const std::int64_t extra = n % max_chunks;
    std::int64_t begin = 0;
    std::int64_t first_end = 0;
    for (std::int64_t cidx = 0; cidx < max_chunks; ++cidx) {
        std::int64_t len = base + (cidx < extra ? 1 : 0);
        std::int64_t end = begin + len;
        if (cidx == 0) {
            first_end = end; // run on the calling thread below
        } else {
            futures.push_back(pool_->submit(
                [&fn, begin, end] { fn(begin, end); }));
        }
        begin = end;
    }
    std::exception_ptr first;
    try {
        fn(0, first_end);
    } catch (...) {
        first = std::current_exception();
    }
    for (auto &f : futures) {
        try {
            f.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

// -------------------------------------------------------------------
// Scalar op bodies (formulas identical to the reference kernels so
// parity with exec/kernels.cc is exact up to float associativity)
// -------------------------------------------------------------------

float
applyUnaryScalar(ir::OpKind kind, float x, const ir::Node &node)
{
    switch (kind) {
      case ir::OpKind::Relu:    return x > 0 ? x : 0;
      case ir::OpKind::Gelu:
        return 0.5f * x * (1.0f + std::tanh(0.7978845608f *
                                            (x + 0.044715f * x * x * x)));
      case ir::OpKind::Silu:    return x / (1.0f + std::exp(-x));
      case ir::OpKind::Sigmoid: return 1.0f / (1.0f + std::exp(-x));
      case ir::OpKind::Tanh:    return std::tanh(x);
      case ir::OpKind::Exp:     return std::exp(x);
      case ir::OpKind::Sqrt:    return std::sqrt(std::max(x, 0.0f));
      case ir::OpKind::Neg:     return -x;
      case ir::OpKind::Identity: return x;
      case ir::OpKind::Scale: {
        float s = static_cast<float>(
            node.attrs.getInt("scale_milli", 1000)) / 1000.0f;
        return x * s;
      }
      default:
        smPanic("applyUnaryScalar on non-unary kind");
    }
}

float
applyBinaryScalar(ir::OpKind kind, float a, float b)
{
    switch (kind) {
      case ir::OpKind::Add: return a + b;
      case ir::OpKind::Sub: return a - b;
      case ir::OpKind::Mul: return a * b;
      case ir::OpKind::Div: return a / b;
      default:
        smPanic("applyBinaryScalar on non-binary kind");
    }
}

// -------------------------------------------------------------------
// Tile parameters
// -------------------------------------------------------------------

TileParams
resolveTileParams(const device::DeviceProfile &dev)
{
    TileParams t;
    if (dev.gemmRowTile > 0) {
        t.rowTile = dev.gemmRowTile;
    } else {
        t.rowTile = std::clamp<std::int64_t>(dev.simdWidth, 8, 16);
    }
    t.rowTile = std::clamp<std::int64_t>(t.rowTile, 1, kMaxRowTile);
    if (dev.gemmKBlock > 0) {
        t.kBlock = dev.gemmKBlock;
    } else {
        const std::int64_t l1 =
            dev.l1CacheBytes > 0 ? dev.l1CacheBytes : 32 * 1024;
        t.kBlock = std::clamp<std::int64_t>(
            l1 / (16 * t.rowTile), 64, 1024);
    }
    t.kBlock = std::clamp<std::int64_t>(t.kBlock, 16, 1 << 20);
    return t;
}

// -------------------------------------------------------------------
// GEMM micro-kernels.
//
// All block kernels compute, for rows r in [0, rows) and columns j in
// [0, n), C[cOff[r] + j*ccs] (+)= sum over kk in [k0, k1) of
// A[r*ars + kk*acs] * B[kk*brs + j*bcs], overwriting C when `first`
// (the k0 == 0 panel).  Per-element accumulation order is ascending
// kk in every variant, so a given (SimdLevel, shape) produces the
// same bytes under any tiling or thread partition.  The vector
// kernels require bcs == 1 (the driver falls back to scalar
// otherwise); strided C is handled with lane-wise load/store, which
// amortizes over a whole k-block.
// -------------------------------------------------------------------

namespace {

using i64 = std::int64_t;

void
gemmBlockScalar(const float *a, i64 ars, i64 acs, const float *b,
                i64 brs, i64 bcs, float *c, const i64 *cOff, i64 ccs,
                i64 rows, i64 n, i64 k0, i64 k1, bool first)
{
    if (first) {
        for (i64 r = 0; r < rows; ++r) {
            float *crow = c + cOff[r];
            if (ccs == 1) {
                std::memset(crow, 0,
                            static_cast<std::size_t>(n) * sizeof(float));
            } else {
                for (i64 j = 0; j < n; ++j)
                    crow[j * ccs] = 0;
            }
        }
    }
    if (bcs == 1 && ccs == 1) {
        for (i64 kk = k0; kk < k1; ++kk) {
            const float *brow = b + kk * brs;
            for (i64 r = 0; r < rows; ++r) {
                const float av = a[r * ars + kk * acs];
                float *crow = c + cOff[r];
                for (i64 j = 0; j < n; ++j)
                    crow[j] += av * brow[j];
            }
        }
        return;
    }
    for (i64 kk = k0; kk < k1; ++kk) {
        const float *brow = b + kk * brs;
        for (i64 r = 0; r < rows; ++r) {
            const float av = a[r * ars + kk * acs];
            float *crow = c + cOff[r];
            for (i64 j = 0; j < n; ++j)
                crow[j * ccs] += av * brow[j * bcs];
        }
    }
}

float
dotScalar(const float *x, const float *y, i64 k)
{
    float acc = 0;
    for (i64 kk = 0; kk < k; ++kk)
        acc += x[kk] * y[kk];
    return acc;
}

#if SMARTMEM_SIMD_X86

__attribute__((target("avx2,fma"))) inline __m256
avx2LoadC(const float *p, i64 ccs)
{
    if (ccs == 1)
        return _mm256_loadu_ps(p);
    alignas(32) float tmp[8];
    for (int j = 0; j < 8; ++j)
        tmp[j] = p[j * ccs];
    return _mm256_load_ps(tmp);
}

__attribute__((target("avx2,fma"))) inline void
avx2StoreC(float *p, i64 ccs, __m256 v)
{
    if (ccs == 1) {
        _mm256_storeu_ps(p, v);
        return;
    }
    alignas(32) float tmp[8];
    _mm256_store_ps(tmp, v);
    for (int j = 0; j < 8; ++j)
        p[j * ccs] = tmp[j];
}

/** 4x16 register-tiled AVX2+FMA block kernel (requires bcs == 1). */
__attribute__((target("avx2,fma"))) void
gemmBlockAvx2(const float *a, i64 ars, i64 acs, const float *b, i64 brs,
              float *c, const i64 *cOff, i64 ccs, i64 rows, i64 n,
              i64 k0, i64 k1, bool first)
{
    const i64 nv = n & ~i64{15};
    for (i64 j0 = 0; j0 < nv; j0 += 16) {
        i64 r = 0;
        for (; r + 4 <= rows; r += 4) {
            const float *a0 = a + (r + 0) * ars;
            const float *a1 = a + (r + 1) * ars;
            const float *a2 = a + (r + 2) * ars;
            const float *a3 = a + (r + 3) * ars;
            float *c0 = c + cOff[r + 0] + j0 * ccs;
            float *c1 = c + cOff[r + 1] + j0 * ccs;
            float *c2 = c + cOff[r + 2] + j0 * ccs;
            float *c3 = c + cOff[r + 3] + j0 * ccs;
            __m256 s00, s01, s10, s11, s20, s21, s30, s31;
            if (first) {
                s00 = s01 = s10 = s11 = _mm256_setzero_ps();
                s20 = s21 = s30 = s31 = _mm256_setzero_ps();
            } else {
                s00 = avx2LoadC(c0, ccs);
                s01 = avx2LoadC(c0 + 8 * ccs, ccs);
                s10 = avx2LoadC(c1, ccs);
                s11 = avx2LoadC(c1 + 8 * ccs, ccs);
                s20 = avx2LoadC(c2, ccs);
                s21 = avx2LoadC(c2 + 8 * ccs, ccs);
                s30 = avx2LoadC(c3, ccs);
                s31 = avx2LoadC(c3 + 8 * ccs, ccs);
            }
            for (i64 kk = k0; kk < k1; ++kk) {
                const float *brow = b + kk * brs + j0;
                const __m256 b0 = _mm256_loadu_ps(brow);
                const __m256 b1 = _mm256_loadu_ps(brow + 8);
                __m256 av = _mm256_set1_ps(a0[kk * acs]);
                s00 = _mm256_fmadd_ps(av, b0, s00);
                s01 = _mm256_fmadd_ps(av, b1, s01);
                av = _mm256_set1_ps(a1[kk * acs]);
                s10 = _mm256_fmadd_ps(av, b0, s10);
                s11 = _mm256_fmadd_ps(av, b1, s11);
                av = _mm256_set1_ps(a2[kk * acs]);
                s20 = _mm256_fmadd_ps(av, b0, s20);
                s21 = _mm256_fmadd_ps(av, b1, s21);
                av = _mm256_set1_ps(a3[kk * acs]);
                s30 = _mm256_fmadd_ps(av, b0, s30);
                s31 = _mm256_fmadd_ps(av, b1, s31);
            }
            avx2StoreC(c0, ccs, s00);
            avx2StoreC(c0 + 8 * ccs, ccs, s01);
            avx2StoreC(c1, ccs, s10);
            avx2StoreC(c1 + 8 * ccs, ccs, s11);
            avx2StoreC(c2, ccs, s20);
            avx2StoreC(c2 + 8 * ccs, ccs, s21);
            avx2StoreC(c3, ccs, s30);
            avx2StoreC(c3 + 8 * ccs, ccs, s31);
        }
        for (; r < rows; ++r) {
            const float *ar = a + r * ars;
            float *cr = c + cOff[r] + j0 * ccs;
            __m256 s0, s1;
            if (first) {
                s0 = s1 = _mm256_setzero_ps();
            } else {
                s0 = avx2LoadC(cr, ccs);
                s1 = avx2LoadC(cr + 8 * ccs, ccs);
            }
            for (i64 kk = k0; kk < k1; ++kk) {
                const float *brow = b + kk * brs + j0;
                const __m256 av = _mm256_set1_ps(ar[kk * acs]);
                s0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow), s0);
                s1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 8), s1);
            }
            avx2StoreC(cr, ccs, s0);
            avx2StoreC(cr + 8 * ccs, ccs, s1);
        }
    }
    if (nv < n)
        gemmBlockScalar(a, ars, acs, b + nv, brs, 1, c + nv * ccs,
                        cOff, ccs, rows, n - nv, k0, k1, first);
}

__attribute__((target("avx512f"))) inline __m512
avx512LoadC(const float *p, i64 ccs, __mmask16 mask)
{
    if (ccs == 1)
        return _mm512_maskz_loadu_ps(mask, p);
    alignas(64) float tmp[16] = {};
    for (int j = 0; j < 16; ++j)
        if (mask & (1u << j))
            tmp[j] = p[j * ccs];
    return _mm512_load_ps(tmp);
}

__attribute__((target("avx512f"))) inline void
avx512StoreC(float *p, i64 ccs, __mmask16 mask, __m512 v)
{
    if (ccs == 1) {
        _mm512_mask_storeu_ps(p, mask, v);
        return;
    }
    alignas(64) float tmp[16];
    _mm512_store_ps(tmp, v);
    for (int j = 0; j < 16; ++j)
        if (mask & (1u << j))
            p[j * ccs] = tmp[j];
}

/** 4x32 register-tiled AVX-512F block kernel (requires bcs == 1);
 *  the column tail runs 16-wide under a lane mask. */
__attribute__((target("avx512f"))) void
gemmBlockAvx512(const float *a, i64 ars, i64 acs, const float *b,
                i64 brs, float *c, const i64 *cOff, i64 ccs, i64 rows,
                i64 n, i64 k0, i64 k1, bool first)
{
    const i64 nv = n & ~i64{31};
    for (i64 j0 = 0; j0 < nv; j0 += 32) {
        i64 r = 0;
        for (; r + 4 <= rows; r += 4) {
            const float *a0 = a + (r + 0) * ars;
            const float *a1 = a + (r + 1) * ars;
            const float *a2 = a + (r + 2) * ars;
            const float *a3 = a + (r + 3) * ars;
            float *c0 = c + cOff[r + 0] + j0 * ccs;
            float *c1 = c + cOff[r + 1] + j0 * ccs;
            float *c2 = c + cOff[r + 2] + j0 * ccs;
            float *c3 = c + cOff[r + 3] + j0 * ccs;
            __m512 s00, s01, s10, s11, s20, s21, s30, s31;
            if (first) {
                s00 = s01 = s10 = s11 = _mm512_setzero_ps();
                s20 = s21 = s30 = s31 = _mm512_setzero_ps();
            } else {
                s00 = avx512LoadC(c0, ccs, 0xFFFF);
                s01 = avx512LoadC(c0 + 16 * ccs, ccs, 0xFFFF);
                s10 = avx512LoadC(c1, ccs, 0xFFFF);
                s11 = avx512LoadC(c1 + 16 * ccs, ccs, 0xFFFF);
                s20 = avx512LoadC(c2, ccs, 0xFFFF);
                s21 = avx512LoadC(c2 + 16 * ccs, ccs, 0xFFFF);
                s30 = avx512LoadC(c3, ccs, 0xFFFF);
                s31 = avx512LoadC(c3 + 16 * ccs, ccs, 0xFFFF);
            }
            for (i64 kk = k0; kk < k1; ++kk) {
                const float *brow = b + kk * brs + j0;
                const __m512 b0 = _mm512_loadu_ps(brow);
                const __m512 b1 = _mm512_loadu_ps(brow + 16);
                __m512 av = _mm512_set1_ps(a0[kk * acs]);
                s00 = _mm512_fmadd_ps(av, b0, s00);
                s01 = _mm512_fmadd_ps(av, b1, s01);
                av = _mm512_set1_ps(a1[kk * acs]);
                s10 = _mm512_fmadd_ps(av, b0, s10);
                s11 = _mm512_fmadd_ps(av, b1, s11);
                av = _mm512_set1_ps(a2[kk * acs]);
                s20 = _mm512_fmadd_ps(av, b0, s20);
                s21 = _mm512_fmadd_ps(av, b1, s21);
                av = _mm512_set1_ps(a3[kk * acs]);
                s30 = _mm512_fmadd_ps(av, b0, s30);
                s31 = _mm512_fmadd_ps(av, b1, s31);
            }
            avx512StoreC(c0, ccs, 0xFFFF, s00);
            avx512StoreC(c0 + 16 * ccs, ccs, 0xFFFF, s01);
            avx512StoreC(c1, ccs, 0xFFFF, s10);
            avx512StoreC(c1 + 16 * ccs, ccs, 0xFFFF, s11);
            avx512StoreC(c2, ccs, 0xFFFF, s20);
            avx512StoreC(c2 + 16 * ccs, ccs, 0xFFFF, s21);
            avx512StoreC(c3, ccs, 0xFFFF, s30);
            avx512StoreC(c3 + 16 * ccs, ccs, 0xFFFF, s31);
        }
        for (; r < rows; ++r) {
            const float *ar = a + r * ars;
            float *cr = c + cOff[r] + j0 * ccs;
            __m512 s0, s1;
            if (first) {
                s0 = s1 = _mm512_setzero_ps();
            } else {
                s0 = avx512LoadC(cr, ccs, 0xFFFF);
                s1 = avx512LoadC(cr + 16 * ccs, ccs, 0xFFFF);
            }
            for (i64 kk = k0; kk < k1; ++kk) {
                const float *brow = b + kk * brs + j0;
                const __m512 av = _mm512_set1_ps(ar[kk * acs]);
                s0 = _mm512_fmadd_ps(av, _mm512_loadu_ps(brow), s0);
                s1 = _mm512_fmadd_ps(av, _mm512_loadu_ps(brow + 16), s1);
            }
            avx512StoreC(cr, ccs, 0xFFFF, s0);
            avx512StoreC(cr + 16 * ccs, ccs, 0xFFFF, s1);
        }
    }
    for (i64 j0 = nv; j0 < n; j0 += 16) {
        const int lanes = static_cast<int>(std::min<i64>(16, n - j0));
        const __mmask16 mask =
            lanes == 16 ? static_cast<__mmask16>(0xFFFF)
                        : static_cast<__mmask16>((1u << lanes) - 1);
        for (i64 r = 0; r < rows; ++r) {
            const float *ar = a + r * ars;
            float *cr = c + cOff[r] + j0 * ccs;
            __m512 s0 = first ? _mm512_setzero_ps()
                              : avx512LoadC(cr, ccs, mask);
            for (i64 kk = k0; kk < k1; ++kk) {
                const float *brow = b + kk * brs + j0;
                const __m512 av = _mm512_set1_ps(ar[kk * acs]);
                s0 = _mm512_fmadd_ps(
                    av, _mm512_maskz_loadu_ps(mask, brow), s0);
            }
            avx512StoreC(cr, ccs, mask, s0);
        }
    }
}

__attribute__((target("avx2,fma"))) float
dotAvx2(const float *x, const float *y, i64 k)
{
    __m256 s0 = _mm256_setzero_ps();
    __m256 s1 = _mm256_setzero_ps();
    i64 kk = 0;
    for (; kk + 16 <= k; kk += 16) {
        s0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + kk),
                             _mm256_loadu_ps(y + kk), s0);
        s1 = _mm256_fmadd_ps(_mm256_loadu_ps(x + kk + 8),
                             _mm256_loadu_ps(y + kk + 8), s1);
    }
    if (kk + 8 <= k) {
        s0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + kk),
                             _mm256_loadu_ps(y + kk), s0);
        kk += 8;
    }
    const __m256 s = _mm256_add_ps(s0, s1);
    const __m128 lo = _mm256_castps256_ps128(s);
    const __m128 hi = _mm256_extractf128_ps(s, 1);
    __m128 q = _mm_add_ps(lo, hi);
    q = _mm_add_ps(q, _mm_movehl_ps(q, q));
    q = _mm_add_ss(q, _mm_shuffle_ps(q, q, 1));
    float acc = _mm_cvtss_f32(q);
    for (; kk < k; ++kk)
        acc += x[kk] * y[kk];
    return acc;
}

__attribute__((target("avx512f"))) float
dotAvx512(const float *x, const float *y, i64 k)
{
    __m512 s0 = _mm512_setzero_ps();
    __m512 s1 = _mm512_setzero_ps();
    i64 kk = 0;
    for (; kk + 32 <= k; kk += 32) {
        s0 = _mm512_fmadd_ps(_mm512_loadu_ps(x + kk),
                             _mm512_loadu_ps(y + kk), s0);
        s1 = _mm512_fmadd_ps(_mm512_loadu_ps(x + kk + 16),
                             _mm512_loadu_ps(y + kk + 16), s1);
    }
    for (; kk < k; kk += 16) {
        const int lanes = static_cast<int>(std::min<i64>(16, k - kk));
        const __mmask16 mask =
            lanes == 16 ? static_cast<__mmask16>(0xFFFF)
                        : static_cast<__mmask16>((1u << lanes) - 1);
        s0 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(mask, x + kk),
                             _mm512_maskz_loadu_ps(mask, y + kk), s0);
    }
    // Reduce via memory: GCC 12's _mm512_reduce_add_ps (and the zmm
    // lane-extract intrinsics generally) route through
    // _mm512_undefined_ps and trip -Wuninitialized under -Werror.
    alignas(64) float lanes[16];
    _mm512_store_ps(lanes, _mm512_add_ps(s0, s1));
    float acc = 0.0f;
    for (int i = 0; i < 16; ++i)
        acc += lanes[i];
    return acc;
}

#endif // SMARTMEM_SIMD_X86

#if SMARTMEM_SIMD_NEON

inline float32x4_t
neonLoadC(const float *p, i64 ccs)
{
    if (ccs == 1)
        return vld1q_f32(p);
    float tmp[4];
    for (int j = 0; j < 4; ++j)
        tmp[j] = p[j * ccs];
    return vld1q_f32(tmp);
}

inline void
neonStoreC(float *p, i64 ccs, float32x4_t v)
{
    if (ccs == 1) {
        vst1q_f32(p, v);
        return;
    }
    float tmp[4];
    vst1q_f32(tmp, v);
    for (int j = 0; j < 4; ++j)
        p[j * ccs] = tmp[j];
}

/** 4x8 register-tiled NEON block kernel (requires bcs == 1). */
void
gemmBlockNeon(const float *a, i64 ars, i64 acs, const float *b, i64 brs,
              float *c, const i64 *cOff, i64 ccs, i64 rows, i64 n,
              i64 k0, i64 k1, bool first)
{
    const i64 nv = n & ~i64{7};
    for (i64 j0 = 0; j0 < nv; j0 += 8) {
        i64 r = 0;
        for (; r + 4 <= rows; r += 4) {
            const float *a0 = a + (r + 0) * ars;
            const float *a1 = a + (r + 1) * ars;
            const float *a2 = a + (r + 2) * ars;
            const float *a3 = a + (r + 3) * ars;
            float *c0 = c + cOff[r + 0] + j0 * ccs;
            float *c1 = c + cOff[r + 1] + j0 * ccs;
            float *c2 = c + cOff[r + 2] + j0 * ccs;
            float *c3 = c + cOff[r + 3] + j0 * ccs;
            float32x4_t s00, s01, s10, s11, s20, s21, s30, s31;
            if (first) {
                s00 = s01 = s10 = s11 = vdupq_n_f32(0);
                s20 = s21 = s30 = s31 = vdupq_n_f32(0);
            } else {
                s00 = neonLoadC(c0, ccs);
                s01 = neonLoadC(c0 + 4 * ccs, ccs);
                s10 = neonLoadC(c1, ccs);
                s11 = neonLoadC(c1 + 4 * ccs, ccs);
                s20 = neonLoadC(c2, ccs);
                s21 = neonLoadC(c2 + 4 * ccs, ccs);
                s30 = neonLoadC(c3, ccs);
                s31 = neonLoadC(c3 + 4 * ccs, ccs);
            }
            for (i64 kk = k0; kk < k1; ++kk) {
                const float *brow = b + kk * brs + j0;
                const float32x4_t b0 = vld1q_f32(brow);
                const float32x4_t b1 = vld1q_f32(brow + 4);
                float32x4_t av = vdupq_n_f32(a0[kk * acs]);
                s00 = vfmaq_f32(s00, av, b0);
                s01 = vfmaq_f32(s01, av, b1);
                av = vdupq_n_f32(a1[kk * acs]);
                s10 = vfmaq_f32(s10, av, b0);
                s11 = vfmaq_f32(s11, av, b1);
                av = vdupq_n_f32(a2[kk * acs]);
                s20 = vfmaq_f32(s20, av, b0);
                s21 = vfmaq_f32(s21, av, b1);
                av = vdupq_n_f32(a3[kk * acs]);
                s30 = vfmaq_f32(s30, av, b0);
                s31 = vfmaq_f32(s31, av, b1);
            }
            neonStoreC(c0, ccs, s00);
            neonStoreC(c0 + 4 * ccs, ccs, s01);
            neonStoreC(c1, ccs, s10);
            neonStoreC(c1 + 4 * ccs, ccs, s11);
            neonStoreC(c2, ccs, s20);
            neonStoreC(c2 + 4 * ccs, ccs, s21);
            neonStoreC(c3, ccs, s30);
            neonStoreC(c3 + 4 * ccs, ccs, s31);
        }
        for (; r < rows; ++r) {
            const float *ar = a + r * ars;
            float *cr = c + cOff[r] + j0 * ccs;
            float32x4_t s0, s1;
            if (first) {
                s0 = s1 = vdupq_n_f32(0);
            } else {
                s0 = neonLoadC(cr, ccs);
                s1 = neonLoadC(cr + 4 * ccs, ccs);
            }
            for (i64 kk = k0; kk < k1; ++kk) {
                const float *brow = b + kk * brs + j0;
                const float32x4_t av = vdupq_n_f32(ar[kk * acs]);
                s0 = vfmaq_f32(s0, av, vld1q_f32(brow));
                s1 = vfmaq_f32(s1, av, vld1q_f32(brow + 4));
            }
            neonStoreC(cr, ccs, s0);
            neonStoreC(cr + 4 * ccs, ccs, s1);
        }
    }
    if (nv < n)
        gemmBlockScalar(a, ars, acs, b + nv, brs, 1, c + nv * ccs,
                        cOff, ccs, rows, n - nv, k0, k1, first);
}

float
dotNeon(const float *x, const float *y, i64 k)
{
    float32x4_t s0 = vdupq_n_f32(0);
    float32x4_t s1 = vdupq_n_f32(0);
    i64 kk = 0;
    for (; kk + 8 <= k; kk += 8) {
        s0 = vfmaq_f32(s0, vld1q_f32(x + kk), vld1q_f32(y + kk));
        s1 = vfmaq_f32(s1, vld1q_f32(x + kk + 4), vld1q_f32(y + kk + 4));
    }
    float acc = vaddvq_f32(vaddq_f32(s0, s1));
    for (; kk < k; ++kk)
        acc += x[kk] * y[kk];
    return acc;
}

#endif // SMARTMEM_SIMD_NEON

/**
 * Full strided GEMM driver: row tiles x k-blocks over the per-level
 * block kernels.  `cOff` holds one absolute element offset per row
 * (so packed/texture output channel bases need no uniform stride).
 */
void
gemmStrided(SimdLevel simd, const TileParams &tiles, const float *a,
            i64 ars, i64 acs, const float *b, i64 brs, i64 bcs, float *c,
            const i64 *cOff, i64 ccs, i64 rows, i64 n, i64 k)
{
    const SimdLevel level = bcs == 1 ? simd : SimdLevel::Scalar;
    for (i64 r0 = 0; r0 < rows; r0 += tiles.rowTile) {
        const i64 rcnt = std::min(tiles.rowTile, rows - r0);
        const float *ar = a + r0 * ars;
        const i64 *co = cOff + r0;
        for (i64 k0 = 0; k0 < k; k0 += tiles.kBlock) {
            const i64 k1 = std::min(k0 + tiles.kBlock, k);
            const bool first = k0 == 0;
            switch (level) {
#if SMARTMEM_SIMD_X86
              case SimdLevel::Avx512:
                gemmBlockAvx512(ar, ars, acs, b, brs, c, co, ccs, rcnt,
                                n, k0, k1, first);
                break;
              case SimdLevel::Avx2:
                gemmBlockAvx2(ar, ars, acs, b, brs, c, co, ccs, rcnt, n,
                              k0, k1, first);
                break;
#endif
#if SMARTMEM_SIMD_NEON
              case SimdLevel::Neon:
                gemmBlockNeon(ar, ars, acs, b, brs, c, co, ccs, rcnt, n,
                              k0, k1, first);
                break;
#endif
              default:
                gemmBlockScalar(ar, ars, acs, b, brs, bcs, c, co, ccs,
                                rcnt, n, k0, k1, first);
                break;
            }
        }
    }
}

/** Contiguous dot kernel for the active level (transB inner loop). */
float (*
dotKernel(SimdLevel simd))(const float *, const float *, i64)
{
    switch (simd) {
#if SMARTMEM_SIMD_X86
      case SimdLevel::Avx512: return dotAvx512;
      case SimdLevel::Avx2: return dotAvx2;
#endif
#if SMARTMEM_SIMD_NEON
      case SimdLevel::Neon: return dotNeon;
#endif
      default: return dotScalar;
    }
}

/**
 * C[rows x n] += A[rows x k] * B[k x n] through the register-tiled
 * block kernels (accumulating).  This is attention's probability-
 * weighted V fold: the accumulators stay in vector registers for a
 * whole column chunk and every V row is read once per row quad.
 */
void
gemmAccum(SimdLevel simd, const float *a, i64 ars, const float *b,
          i64 brs, float *c, const i64 *cOff, i64 rows, i64 n, i64 k)
{
    switch (simd) {
#if SMARTMEM_SIMD_X86
      case SimdLevel::Avx512:
        gemmBlockAvx512(a, ars, 1, b, brs, c, cOff, 1, rows, n, 0, k,
                        false);
        return;
      case SimdLevel::Avx2:
        gemmBlockAvx2(a, ars, 1, b, brs, c, cOff, 1, rows, n, 0, k,
                      false);
        return;
#endif
#if SMARTMEM_SIMD_NEON
      case SimdLevel::Neon:
        gemmBlockNeon(a, ars, 1, b, brs, c, cOff, 1, rows, n, 0, k,
                      false);
        return;
#endif
      default:
        gemmBlockScalar(a, ars, 1, b, brs, 1, c, cOff, 1, rows, n, 0,
                        k, false);
    }
}

TileParams
sanitizeTiles(const TileParams &tiles)
{
    TileParams t;
    t.rowTile = std::clamp<i64>(tiles.rowTile, 1, kMaxRowTile);
    t.kBlock = std::clamp<i64>(tiles.kBlock, 16, 1 << 20);
    return t;
}

} // namespace

void
blockedMatMul(const MatView &a, const MatView &b, const MatMutView &c,
              std::int64_t batch, std::int64_t m, std::int64_t n,
              std::int64_t k, bool transB, SimdLevel simd,
              const TileParams &tilesIn, const ParallelRunner &par)
{
    const TileParams tiles = sanitizeTiles(tilesIn);
    // Parallel grain: whole batch items when the batch is large
    // (attention's windowed BatchMatMuls), row blocks otherwise.
    const std::int64_t row_blocks =
        (m + tiles.rowTile - 1) / tiles.rowTile;
    const std::int64_t tasks = batch * row_blocks;
    const bool dotVec = a.cs == 1 && b.cs == 1;
    float (*const dot)(const float *, const float *, i64) =
        dotVec ? dotKernel(simd) : nullptr;
    par.run(tasks, 1, [&](std::int64_t t0, std::int64_t t1) {
        std::array<i64, kMaxRowTile> cOff;
        for (std::int64_t t = t0; t < t1; ++t) {
            const std::int64_t bi = t / row_blocks;
            const std::int64_t i0 = (t % row_blocks) * tiles.rowTile;
            const std::int64_t rows = std::min(tiles.rowTile, m - i0);
            const float *ap = a.data + a.off(bi) + i0 * a.rs;
            const float *bp = b.data + b.off(bi);
            float *cp = c.data + c.off(bi) + i0 * c.rs;
            for (i64 r = 0; r < rows; ++r)
                cOff[static_cast<std::size_t>(r)] = r * c.rs;
            if (transB) {
                for (i64 r = 0; r < rows; ++r) {
                    const float *arow = ap + r * a.rs;
                    float *crow = cp + r * c.rs;
                    if (dot != nullptr) {
                        for (i64 j = 0; j < n; ++j)
                            crow[j * c.cs] = dot(arow, bp + j * b.rs, k);
                    } else {
                        for (i64 j = 0; j < n; ++j) {
                            const float *brow = bp + j * b.rs;
                            float acc = 0;
                            for (i64 kk = 0; kk < k; ++kk)
                                acc += arow[kk * a.cs] *
                                       brow[kk * b.cs];
                            crow[j * c.cs] = acc;
                        }
                    }
                }
            } else {
                gemmStrided(simd, tiles, ap, a.rs, a.cs, bp, b.rs, b.cs,
                            cp, cOff.data(), c.cs, rows, n, k);
            }
        }
    });
}

void
blockedFusedAttention(const float *q, const float *k, const float *v,
                      const float *bias, bool biasBatched, float scale,
                      float *out, std::int64_t batch, std::int64_t n,
                      std::int64_t dk, std::int64_t m, std::int64_t dv,
                      SimdLevel simd, const TileParams &tilesIn,
                      const ParallelRunner &par)
{
    const TileParams tiles = sanitizeTiles(tilesIn);
    const i64 jBlock = std::min(tiles.kBlock, m);
    const i64 row_blocks = (n + tiles.rowTile - 1) / tiles.rowTile;
    const i64 tasks = batch * row_blocks;
    float (*const dot)(const float *, const float *, i64) =
        dotKernel(simd);
    // Query rows are processed in quads: one key/V block sweep feeds
    // four rows' online-softmax states, so every K row is reused four
    // times from L1 and the V fold runs as a 4-row register-tiled
    // GEMM.  Each row's arithmetic is independent and identically
    // ordered, so the quad width never changes output bytes.
    constexpr i64 kQRows = 4;
    par.run(tasks, 1, [&](std::int64_t t0, std::int64_t t1) {
        std::vector<float> sbuf(
            static_cast<std::size_t>(kQRows * jBlock));
        std::vector<float> acc(static_cast<std::size_t>(kQRows * dv));
        const i64 accOff[kQRows] = {0, dv, 2 * dv, 3 * dv};
        for (std::int64_t t = t0; t < t1; ++t) {
            const i64 bi = t / row_blocks;
            const i64 i0 = (t % row_blocks) * tiles.rowTile;
            const i64 i1 = std::min(i0 + tiles.rowTile, n);
            const float *kp = k + bi * m * dk;
            const float *vp = v + bi * m * dv;
            const float *bp =
                bias != nullptr
                    ? bias + (biasBatched ? bi * n * m : 0)
                    : nullptr;
            for (i64 i = i0; i < i1; i += kQRows) {
                const i64 rows = std::min(kQRows, i1 - i);
                float mx[kQRows], denom[kQRows];
                for (i64 r = 0; r < rows; ++r) {
                    mx[r] = -1e30f;
                    denom[r] = 0;
                }
                std::fill(acc.begin(), acc.end(), 0.0f);
                // Online softmax: one ascending sweep over key
                // blocks; a rising row maximum rescales the partial
                // sums so no score row is ever materialized.
                for (i64 j0 = 0; j0 < m; j0 += jBlock) {
                    const i64 cnt = std::min(jBlock, m - j0);
                    for (i64 r = 0; r < rows; ++r) {
                        const float *qrow = q + (bi * n + i + r) * dk;
                        float *srow =
                            sbuf.data() +
                            static_cast<std::size_t>(r * jBlock);
                        float bmx = -1e30f;
                        for (i64 j = 0; j < cnt; ++j) {
                            float s = scale *
                                      dot(qrow, kp + (j0 + j) * dk, dk);
                            if (bp != nullptr)
                                s += bp[(i + r) * m + j0 + j];
                            srow[j] = s;
                            bmx = std::max(bmx, s);
                        }
                        if (bmx > mx[r]) {
                            const float rs = std::exp(mx[r] - bmx);
                            denom[r] *= rs;
                            float *arow =
                                acc.data() +
                                static_cast<std::size_t>(r * dv);
                            for (i64 d = 0; d < dv; ++d)
                                arow[d] *= rs;
                            mx[r] = bmx;
                        }
                        for (i64 j = 0; j < cnt; ++j) {
                            const float e = std::exp(srow[j] - mx[r]);
                            srow[j] = e;
                            denom[r] += e;
                        }
                    }
                    gemmAccum(simd, sbuf.data(), jBlock, vp + j0 * dv,
                              dv, acc.data(), accOff, rows, dv, cnt);
                }
                for (i64 r = 0; r < rows; ++r) {
                    float *orow = out + (bi * n + i + r) * dv;
                    const float *arow =
                        acc.data() + static_cast<std::size_t>(r * dv);
                    const float inv = 1.0f / denom[r];
                    for (i64 d = 0; d < dv; ++d)
                        orow[d] = arow[d] * inv;
                }
            }
        }
    });
}

// -------------------------------------------------------------------
// Convolution
// -------------------------------------------------------------------

void
blockedConv2d(const float *x, const PlaneLayout &xl, const float *w,
              float *out, const PlaneLayout &ol, std::int64_t n_batch,
              std::int64_t ic, std::int64_t h, std::int64_t wdim,
              std::int64_t oc, std::int64_t oh, std::int64_t ow,
              std::int64_t kh, std::int64_t kw, std::int64_t stride,
              std::int64_t pad, std::int64_t groups, const float *bias,
              std::int64_t biasLen, SimdLevel simd,
              const TileParams &tilesIn, const ParallelRunner &par,
              runtime::BufferPool &scratch)
{
    SM_ASSERT(ol.sh == ol.sw * ow,
              "blockedConv2d output layout must be pixel-linear");
    const TileParams tiles = sanitizeTiles(tilesIn);
    const std::int64_t icg = ic / groups;
    const std::int64_t ocg = oc / groups;
    const std::int64_t cols = oh * ow;
    const std::int64_t col_rows = icg * kh * kw;
    float *col = scratch.allocateFloats(col_rows * cols);
    std::vector<i64> rowOff(static_cast<std::size_t>(ocg));

    for (std::int64_t n = 0; n < n_batch; ++n) {
        for (std::int64_t g = 0; g < groups; ++g) {
            // im2col: row r = (c, dy, dx) over output pixels, reading
            // x through its physical layout (vec4-packed channels and
            // padded/texture-order rows stay in place).
            par.run(col_rows, 4, [&](std::int64_t r0, std::int64_t r1) {
                for (std::int64_t r = r0; r < r1; ++r) {
                    const std::int64_t c = r / (kh * kw);
                    const std::int64_t dy = (r / kw) % kh;
                    const std::int64_t dx = r % kw;
                    const float *xplane =
                        x + xl.planeOff(n, g * icg + c);
                    float *crow = col + r * cols;
                    for (std::int64_t y = 0; y < oh; ++y) {
                        const std::int64_t iy = y * stride + dy - pad;
                        float *dst = crow + y * ow;
                        if (iy < 0 || iy >= h) {
                            std::memset(dst, 0,
                                        static_cast<std::size_t>(ow) *
                                            sizeof(float));
                            continue;
                        }
                        const float *xrow = xplane + iy * xl.sh;
                        if (stride == 1 && xl.sw == 1) {
                            // Contiguous middle, zero-padded edges.
                            for (std::int64_t xo = 0; xo < ow; ++xo) {
                                const std::int64_t ix = xo + dx - pad;
                                dst[xo] = (ix < 0 || ix >= wdim)
                                              ? 0.0f
                                              : xrow[ix];
                            }
                        } else {
                            for (std::int64_t xo = 0; xo < ow; ++xo) {
                                const std::int64_t ix =
                                    xo * stride + dx - pad;
                                dst[xo] = (ix < 0 || ix >= wdim)
                                              ? 0.0f
                                              : xrow[ix * xl.sw];
                            }
                        }
                    }
                }
            });
            // GEMM: out[g-channels][pixels] = W[ocg x col_rows] * col,
            // writing each channel at its (possibly packed) base.
            const float *wg = w + g * ocg * col_rows;
            for (std::int64_t o = 0; o < ocg; ++o)
                rowOff[static_cast<std::size_t>(o)] =
                    ol.planeOff(n, g * ocg + o);
            par.run(ocg, 1, [&](std::int64_t o0, std::int64_t o1) {
                gemmStrided(simd, tiles, wg + o0 * col_rows, col_rows,
                            1, col, cols, 1, out, rowOff.data() + o0,
                            ol.sw, o1 - o0, cols, col_rows);
                if (bias != nullptr) {
                    for (std::int64_t o = o0; o < o1; ++o) {
                        const float bv =
                            bias[(g * ocg + o) % biasLen];
                        float *orow =
                            out + rowOff[static_cast<std::size_t>(o)];
                        for (std::int64_t p = 0; p < cols; ++p)
                            orow[p * ol.sw] += bv;
                    }
                }
            });
        }
    }
    scratch.release(col);
}

void
blockedDepthwiseConv2d(const float *x, const PlaneLayout &xl,
                       const float *w, float *out, const PlaneLayout &ol,
                       std::int64_t n_batch, std::int64_t c,
                       std::int64_t h, std::int64_t wdim, std::int64_t oh,
                       std::int64_t ow, std::int64_t kh, std::int64_t kw,
                       std::int64_t stride, std::int64_t pad,
                       const ParallelRunner &par)
{
    par.run(n_batch * c, 1, [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t p = p0; p < p1; ++p) {
            const std::int64_t n = p / c;
            const std::int64_t ch = p % c;
            const float *xp = x + xl.planeOff(n, ch);
            const float *wp = w + ch * kh * kw;
            float *op = out + ol.planeOff(n, ch);
            for (std::int64_t y = 0; y < oh; ++y) {
                for (std::int64_t xo = 0; xo < ow; ++xo) {
                    float acc = 0;
                    for (std::int64_t dy = 0; dy < kh; ++dy) {
                        const std::int64_t iy = y * stride + dy - pad;
                        if (iy < 0 || iy >= h)
                            continue;
                        const float *xrow = xp + iy * xl.sh;
                        const float *wrow = wp + dy * kw;
                        for (std::int64_t dx = 0; dx < kw; ++dx) {
                            const std::int64_t ix =
                                xo * stride + dx - pad;
                            if (ix < 0 || ix >= wdim)
                                continue;
                            acc += xrow[ix * xl.sw] * wrow[dx];
                        }
                    }
                    op[y * ol.sh + xo * ol.sw] = acc;
                }
            }
        }
    });
}

// -------------------------------------------------------------------
// Element-wise
// -------------------------------------------------------------------

void
blockedUnary(ir::OpKind kind, const ir::Node &node, const float *x,
             float *y, std::int64_t n, const ParallelRunner &par)
{
    par.run(n, 4096, [&](std::int64_t i0, std::int64_t i1) {
        switch (kind) {
          case ir::OpKind::Relu:
            for (std::int64_t i = i0; i < i1; ++i)
                y[i] = x[i] > 0 ? x[i] : 0;
            break;
          case ir::OpKind::Identity:
            if (y != x)
                std::memcpy(y + i0, x + i0,
                            static_cast<std::size_t>(i1 - i0) *
                                sizeof(float));
            break;
          default:
            for (std::int64_t i = i0; i < i1; ++i)
                y[i] = applyUnaryScalar(kind, x[i], node);
        }
    });
}

namespace {

/** Row-major strides of `s` broadcast against outShape: 0 where s has
 *  extent 1 or lacks the (leading) dimension. */
std::vector<std::int64_t>
broadcastStrides(const ir::Shape &outShape, const ir::Shape &s)
{
    const int orank = outShape.rank();
    const int srank = s.rank();
    std::vector<std::int64_t> own = s.rowMajorStrides();
    std::vector<std::int64_t> strides(static_cast<std::size_t>(orank), 0);
    for (int d = 0; d < srank; ++d) {
        if (s.dim(d) != 1)
            strides[static_cast<std::size_t>(d + orank - srank)] =
                own[static_cast<std::size_t>(d)];
    }
    return strides;
}

} // namespace

void
blockedBinary(ir::OpKind kind, const float *a, const float *b, float *out,
              const ir::Shape &outShape, const ir::Shape &aShape,
              const ir::Shape &bShape, const ParallelRunner &par)
{
    const std::int64_t n = outShape.numElements();

    // Fast path: both operands elementwise-identical to the output.
    if (aShape == outShape && bShape == outShape) {
        par.run(n, 4096, [&](std::int64_t i0, std::int64_t i1) {
            switch (kind) {
              case ir::OpKind::Add:
                for (std::int64_t i = i0; i < i1; ++i)
                    out[i] = a[i] + b[i];
                break;
              case ir::OpKind::Sub:
                for (std::int64_t i = i0; i < i1; ++i)
                    out[i] = a[i] - b[i];
                break;
              case ir::OpKind::Mul:
                for (std::int64_t i = i0; i < i1; ++i)
                    out[i] = a[i] * b[i];
                break;
              default:
                for (std::int64_t i = i0; i < i1; ++i)
                    out[i] = applyBinaryScalar(kind, a[i], b[i]);
            }
        });
        return;
    }

    // General broadcast: odometer over output coordinates with
    // zero-stride dims on the broadcast operand(s).
    const auto astr = broadcastStrides(outShape, aShape);
    const auto bstr = broadcastStrides(outShape, bShape);
    const int rank = outShape.rank();
    par.run(n, 4096, [&](std::int64_t i0, std::int64_t i1) {
        std::vector<std::int64_t> coord = ir::delinearize(i0, outShape);
        std::int64_t aoff = 0, boff = 0;
        for (int d = 0; d < rank; ++d) {
            aoff += coord[static_cast<std::size_t>(d)] *
                    astr[static_cast<std::size_t>(d)];
            boff += coord[static_cast<std::size_t>(d)] *
                    bstr[static_cast<std::size_t>(d)];
        }
        for (std::int64_t i = i0; i < i1; ++i) {
            out[i] = applyBinaryScalar(kind, a[aoff], b[boff]);
            for (int d = rank - 1; d >= 0; --d) {
                const auto di = static_cast<std::size_t>(d);
                aoff += astr[di];
                boff += bstr[di];
                if (++coord[di] < outShape.dim(d))
                    break;
                aoff -= astr[di] * outShape.dim(d);
                boff -= bstr[di] * outShape.dim(d);
                coord[di] = 0;
            }
        }
    });
}

// -------------------------------------------------------------------
// Normalizations / softmax
// -------------------------------------------------------------------

void
blockedSoftmax(const float *x, float *out, const ir::Shape &shape,
               int axis, const ParallelRunner &par)
{
    std::int64_t inner = 1;
    for (int i = axis + 1; i < shape.rank(); ++i)
        inner *= shape.dim(i);
    const std::int64_t extent = shape.dim(axis);
    const std::int64_t outer = shape.numElements() / (inner * extent);

    par.run(outer, 1, [&](std::int64_t o0, std::int64_t o1) {
        for (std::int64_t o = o0; o < o1; ++o) {
            for (std::int64_t i = 0; i < inner; ++i) {
                const float *xp = x + o * extent * inner + i;
                float *op = out + o * extent * inner + i;
                float mx = -1e30f;
                for (std::int64_t e = 0; e < extent; ++e)
                    mx = std::max(mx, xp[e * inner]);
                float denom = 0;
                for (std::int64_t e = 0; e < extent; ++e)
                    denom += std::exp(xp[e * inner] - mx);
                for (std::int64_t e = 0; e < extent; ++e)
                    op[e * inner] = std::exp(xp[e * inner] - mx) / denom;
            }
        }
    });
}

void
blockedLayerNorm(const float *x, const float *gamma,
                 std::int64_t gammaLen, const float *beta,
                 std::int64_t betaLen, float *out, std::int64_t outer,
                 std::int64_t inner, const ParallelRunner &par)
{
    par.run(outer, 1, [&](std::int64_t o0, std::int64_t o1) {
        for (std::int64_t o = o0; o < o1; ++o) {
            const float *xp = x + o * inner;
            float *op = out + o * inner;
            float sum = 0;
            for (std::int64_t i = 0; i < inner; ++i)
                sum += xp[i];
            const float mean = sum / static_cast<float>(inner);
            float var = 0;
            for (std::int64_t i = 0; i < inner; ++i)
                var += (xp[i] - mean) * (xp[i] - mean);
            var /= static_cast<float>(inner);
            const float inv = 1.0f / std::sqrt(var + 1e-5f);
            for (std::int64_t i = 0; i < inner; ++i) {
                float v = (xp[i] - mean) * inv;
                if (gamma)
                    v *= gamma[i % gammaLen];
                if (beta)
                    v += beta[i % betaLen];
                op[i] = v;
            }
        }
    });
}

void
blockedInstanceNorm(const float *x, float *out, std::int64_t nc,
                    std::int64_t hw, const ParallelRunner &par)
{
    par.run(nc, 1, [&](std::int64_t o0, std::int64_t o1) {
        for (std::int64_t o = o0; o < o1; ++o) {
            const float *xp = x + o * hw;
            float *op = out + o * hw;
            float sum = 0;
            for (std::int64_t i = 0; i < hw; ++i)
                sum += xp[i];
            const float mean = sum / static_cast<float>(hw);
            float var = 0;
            for (std::int64_t i = 0; i < hw; ++i)
                var += (xp[i] - mean) * (xp[i] - mean);
            var /= static_cast<float>(hw);
            const float inv = 1.0f / std::sqrt(var + 1e-5f);
            for (std::int64_t i = 0; i < hw; ++i)
                op[i] = (xp[i] - mean) * inv;
        }
    });
}

void
blockedBatchNorm(const float *x, const float *scale,
                 std::int64_t scaleLen, const float *bias,
                 std::int64_t biasLen, float *out, std::int64_t n,
                 std::int64_t c, std::int64_t hw,
                 const ParallelRunner &par)
{
    par.run(n * c, 1, [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t p = p0; p < p1; ++p) {
            const std::int64_t ch = p % c;
            const float g = scale[ch % scaleLen];
            const float b = bias[ch % biasLen];
            const float *xp = x + p * hw;
            float *op = out + p * hw;
            for (std::int64_t i = 0; i < hw; ++i)
                op[i] = xp[i] * g + b;
        }
    });
}

} // namespace smartmem::exec
