#include "exec/kernels_blocked.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <exception>
#include <future>
#include <vector>

#include "runtime/memory_pool.h"
#include "support/error.h"

namespace smartmem::exec {

// -------------------------------------------------------------------
// ParallelRunner
// -------------------------------------------------------------------

ParallelRunner::ParallelRunner(int threads)
{
    threads_ = threads > 0 ? threads : support::defaultThreadCount();
    threads_ = std::max(threads_, 1);
    if (threads_ > 1)
        pool_ = std::make_unique<support::ThreadPool>(threads_ - 1);
}

ParallelRunner::~ParallelRunner() = default;

void
ParallelRunner::run(std::int64_t n, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>
                        &fn) const
{
    if (n <= 0)
        return;
    grain = std::max<std::int64_t>(grain, 1);
    const std::int64_t max_chunks = std::max<std::int64_t>(
        std::min<std::int64_t>(threads_, (n + grain - 1) / grain), 1);
    if (max_chunks == 1 || !pool_) {
        fn(0, n);
        return;
    }
    // Static partition: chunk boundaries depend only on (n, chunks),
    // so every element is processed by the same chunk at any thread
    // count -- the backend's determinism guarantee.
    std::vector<std::future<void>> futures;
    futures.reserve(static_cast<std::size_t>(max_chunks) - 1);
    const std::int64_t base = n / max_chunks;
    const std::int64_t extra = n % max_chunks;
    std::int64_t begin = 0;
    std::int64_t first_end = 0;
    for (std::int64_t cidx = 0; cidx < max_chunks; ++cidx) {
        std::int64_t len = base + (cidx < extra ? 1 : 0);
        std::int64_t end = begin + len;
        if (cidx == 0) {
            first_end = end; // run on the calling thread below
        } else {
            futures.push_back(pool_->submit(
                [&fn, begin, end] { fn(begin, end); }));
        }
        begin = end;
    }
    std::exception_ptr first;
    try {
        fn(0, first_end);
    } catch (...) {
        first = std::current_exception();
    }
    for (auto &f : futures) {
        try {
            f.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

// -------------------------------------------------------------------
// Scalar op bodies (formulas identical to the reference kernels so
// parity with exec/kernels.cc is exact up to float associativity)
// -------------------------------------------------------------------

float
applyUnaryScalar(ir::OpKind kind, float x, const ir::Node &node)
{
    switch (kind) {
      case ir::OpKind::Relu:    return x > 0 ? x : 0;
      case ir::OpKind::Gelu:
        return 0.5f * x * (1.0f + std::tanh(0.7978845608f *
                                            (x + 0.044715f * x * x * x)));
      case ir::OpKind::Silu:    return x / (1.0f + std::exp(-x));
      case ir::OpKind::Sigmoid: return 1.0f / (1.0f + std::exp(-x));
      case ir::OpKind::Tanh:    return std::tanh(x);
      case ir::OpKind::Exp:     return std::exp(x);
      case ir::OpKind::Sqrt:    return std::sqrt(std::max(x, 0.0f));
      case ir::OpKind::Neg:     return -x;
      case ir::OpKind::Identity: return x;
      case ir::OpKind::Scale: {
        float s = static_cast<float>(
            node.attrs.getInt("scale_milli", 1000)) / 1000.0f;
        return x * s;
      }
      default:
        smPanic("applyUnaryScalar on non-unary kind");
    }
}

float
applyBinaryScalar(ir::OpKind kind, float a, float b)
{
    switch (kind) {
      case ir::OpKind::Add: return a + b;
      case ir::OpKind::Sub: return a - b;
      case ir::OpKind::Mul: return a * b;
      case ir::OpKind::Div: return a / b;
      default:
        smPanic("applyBinaryScalar on non-binary kind");
    }
}

// -------------------------------------------------------------------
// MatMul
// -------------------------------------------------------------------

namespace {

/** Row tile height: B panel rows are reused kRowTile times from L1. */
constexpr std::int64_t kRowTile = 8;

/** K panel width: one A row tile's panel footprint stays in L1. */
constexpr std::int64_t kKBlock = 256;

/** C[m x n] += A[m x k] * B[k x n], row-major, single thread. */
void
gemmRowMajor(const float *a, const float *b, float *c, std::int64_t m,
             std::int64_t n, std::int64_t k)
{
    for (std::int64_t i0 = 0; i0 < m; i0 += kRowTile) {
        const std::int64_t i1 = std::min(i0 + kRowTile, m);
        for (std::int64_t k0 = 0; k0 < k; k0 += kKBlock) {
            const std::int64_t k1 = std::min(k0 + kKBlock, k);
            for (std::int64_t kk = k0; kk < k1; ++kk) {
                const float *brow = b + kk * n;
                for (std::int64_t i = i0; i < i1; ++i) {
                    const float av = a[i * k + kk];
                    float *crow = c + i * n;
                    for (std::int64_t j = 0; j < n; ++j)
                        crow[j] += av * brow[j];
                }
            }
        }
    }
}

/** C[m x n] = A[m x k] * B[n x k]^T: blocked dot products. */
void
gemmTransB(const float *a, const float *b, float *c, std::int64_t m,
           std::int64_t n, std::int64_t k)
{
    for (std::int64_t i = 0; i < m; ++i) {
        const float *arow = a + i * k;
        float *crow = c + i * n;
        for (std::int64_t j = 0; j < n; ++j) {
            const float *brow = b + j * k;
            float acc = 0;
            for (std::int64_t kk = 0; kk < k; ++kk)
                acc += arow[kk] * brow[kk];
            crow[j] = acc;
        }
    }
}

} // namespace

void
blockedMatMul(const float *a, const float *b, float *c,
              std::int64_t batch, bool bBatched, std::int64_t m,
              std::int64_t n, std::int64_t k, bool transB,
              const ParallelRunner &par)
{
    // Parallel grain: whole batch items when the batch is large
    // (attention's windowed BatchMatMuls), row blocks otherwise.
    const std::int64_t row_blocks = (m + kRowTile - 1) / kRowTile;
    const std::int64_t tasks = batch * row_blocks;
    par.run(tasks, 1, [&](std::int64_t t0, std::int64_t t1) {
        for (std::int64_t t = t0; t < t1; ++t) {
            const std::int64_t bi = t / row_blocks;
            const std::int64_t i0 = (t % row_blocks) * kRowTile;
            const std::int64_t rows = std::min(kRowTile, m - i0);
            const float *ap = a + (bi * m + i0) * k;
            const float *bp = b + (bBatched ? bi * k * n : 0);
            float *cp = c + (bi * m + i0) * n;
            if (transB) {
                gemmTransB(ap, bp, cp, rows, n, k);
            } else {
                std::memset(cp, 0,
                            static_cast<std::size_t>(rows * n) *
                                sizeof(float));
                gemmRowMajor(ap, bp, cp, rows, n, k);
            }
        }
    });
}

// -------------------------------------------------------------------
// Convolution
// -------------------------------------------------------------------

void
blockedConv2d(const float *x, const float *w, float *out,
              std::int64_t n_batch, std::int64_t ic, std::int64_t h,
              std::int64_t wdim, std::int64_t oc, std::int64_t oh,
              std::int64_t ow, std::int64_t kh, std::int64_t kw,
              std::int64_t stride, std::int64_t pad, std::int64_t groups,
              const ParallelRunner &par, runtime::BufferPool &scratch)
{
    const std::int64_t icg = ic / groups;
    const std::int64_t ocg = oc / groups;
    const std::int64_t cols = oh * ow;
    const std::int64_t col_rows = icg * kh * kw;
    float *col = scratch.allocateFloats(col_rows * cols);

    for (std::int64_t n = 0; n < n_batch; ++n) {
        for (std::int64_t g = 0; g < groups; ++g) {
            const float *xg = x + (n * ic + g * icg) * h * wdim;
            // im2col: row r = (c, dy, dx) over output pixels.
            par.run(col_rows, 4, [&](std::int64_t r0, std::int64_t r1) {
                for (std::int64_t r = r0; r < r1; ++r) {
                    const std::int64_t c = r / (kh * kw);
                    const std::int64_t dy = (r / kw) % kh;
                    const std::int64_t dx = r % kw;
                    const float *xplane = xg + c * h * wdim;
                    float *crow = col + r * cols;
                    for (std::int64_t y = 0; y < oh; ++y) {
                        const std::int64_t iy = y * stride + dy - pad;
                        float *dst = crow + y * ow;
                        if (iy < 0 || iy >= h) {
                            std::memset(dst, 0,
                                        static_cast<std::size_t>(ow) *
                                            sizeof(float));
                            continue;
                        }
                        const float *xrow = xplane + iy * wdim;
                        if (stride == 1) {
                            // Contiguous middle, zero-padded edges.
                            for (std::int64_t xo = 0; xo < ow; ++xo) {
                                const std::int64_t ix = xo + dx - pad;
                                dst[xo] = (ix < 0 || ix >= wdim)
                                              ? 0.0f
                                              : xrow[ix];
                            }
                        } else {
                            for (std::int64_t xo = 0; xo < ow; ++xo) {
                                const std::int64_t ix =
                                    xo * stride + dx - pad;
                                dst[xo] = (ix < 0 || ix >= wdim)
                                              ? 0.0f
                                              : xrow[ix];
                            }
                        }
                    }
                }
            });
            // GEMM: out[g-channels][pixels] = W[ocg x col_rows] * col.
            const float *wg = w + g * ocg * col_rows;
            float *og = out + (n * oc + g * ocg) * cols;
            par.run(ocg, 1, [&](std::int64_t o0, std::int64_t o1) {
                std::memset(og + o0 * cols, 0,
                            static_cast<std::size_t>((o1 - o0) * cols) *
                                sizeof(float));
                gemmRowMajor(wg + o0 * col_rows, col, og + o0 * cols,
                             o1 - o0, cols, col_rows);
            });
        }
    }
    scratch.release(col);
}

void
blockedDepthwiseConv2d(const float *x, const float *w, float *out,
                       std::int64_t n_batch, std::int64_t c,
                       std::int64_t h, std::int64_t wdim, std::int64_t oh,
                       std::int64_t ow, std::int64_t kh, std::int64_t kw,
                       std::int64_t stride, std::int64_t pad,
                       const ParallelRunner &par)
{
    par.run(n_batch * c, 1, [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t p = p0; p < p1; ++p) {
            const float *xp = x + p * h * wdim;
            const float *wp = w + (p % c) * kh * kw;
            float *op = out + p * oh * ow;
            for (std::int64_t y = 0; y < oh; ++y) {
                for (std::int64_t xo = 0; xo < ow; ++xo) {
                    float acc = 0;
                    for (std::int64_t dy = 0; dy < kh; ++dy) {
                        const std::int64_t iy = y * stride + dy - pad;
                        if (iy < 0 || iy >= h)
                            continue;
                        const float *xrow = xp + iy * wdim;
                        const float *wrow = wp + dy * kw;
                        for (std::int64_t dx = 0; dx < kw; ++dx) {
                            const std::int64_t ix =
                                xo * stride + dx - pad;
                            if (ix < 0 || ix >= wdim)
                                continue;
                            acc += xrow[ix] * wrow[dx];
                        }
                    }
                    op[y * ow + xo] = acc;
                }
            }
        }
    });
}

// -------------------------------------------------------------------
// Element-wise
// -------------------------------------------------------------------

void
blockedUnary(ir::OpKind kind, const ir::Node &node, const float *x,
             float *y, std::int64_t n, const ParallelRunner &par)
{
    par.run(n, 4096, [&](std::int64_t i0, std::int64_t i1) {
        switch (kind) {
          case ir::OpKind::Relu:
            for (std::int64_t i = i0; i < i1; ++i)
                y[i] = x[i] > 0 ? x[i] : 0;
            break;
          case ir::OpKind::Identity:
            if (y != x)
                std::memcpy(y + i0, x + i0,
                            static_cast<std::size_t>(i1 - i0) *
                                sizeof(float));
            break;
          default:
            for (std::int64_t i = i0; i < i1; ++i)
                y[i] = applyUnaryScalar(kind, x[i], node);
        }
    });
}

namespace {

/** Row-major strides of `s` broadcast against outShape: 0 where s has
 *  extent 1 or lacks the (leading) dimension. */
std::vector<std::int64_t>
broadcastStrides(const ir::Shape &outShape, const ir::Shape &s)
{
    const int orank = outShape.rank();
    const int srank = s.rank();
    std::vector<std::int64_t> own = s.rowMajorStrides();
    std::vector<std::int64_t> strides(static_cast<std::size_t>(orank), 0);
    for (int d = 0; d < srank; ++d) {
        if (s.dim(d) != 1)
            strides[static_cast<std::size_t>(d + orank - srank)] =
                own[static_cast<std::size_t>(d)];
    }
    return strides;
}

} // namespace

void
blockedBinary(ir::OpKind kind, const float *a, const float *b, float *out,
              const ir::Shape &outShape, const ir::Shape &aShape,
              const ir::Shape &bShape, const ParallelRunner &par)
{
    const std::int64_t n = outShape.numElements();

    // Fast path: both operands elementwise-identical to the output.
    if (aShape == outShape && bShape == outShape) {
        par.run(n, 4096, [&](std::int64_t i0, std::int64_t i1) {
            switch (kind) {
              case ir::OpKind::Add:
                for (std::int64_t i = i0; i < i1; ++i)
                    out[i] = a[i] + b[i];
                break;
              case ir::OpKind::Sub:
                for (std::int64_t i = i0; i < i1; ++i)
                    out[i] = a[i] - b[i];
                break;
              case ir::OpKind::Mul:
                for (std::int64_t i = i0; i < i1; ++i)
                    out[i] = a[i] * b[i];
                break;
              default:
                for (std::int64_t i = i0; i < i1; ++i)
                    out[i] = applyBinaryScalar(kind, a[i], b[i]);
            }
        });
        return;
    }

    // General broadcast: odometer over output coordinates with
    // zero-stride dims on the broadcast operand(s).
    const auto astr = broadcastStrides(outShape, aShape);
    const auto bstr = broadcastStrides(outShape, bShape);
    const int rank = outShape.rank();
    par.run(n, 4096, [&](std::int64_t i0, std::int64_t i1) {
        std::vector<std::int64_t> coord = ir::delinearize(i0, outShape);
        std::int64_t aoff = 0, boff = 0;
        for (int d = 0; d < rank; ++d) {
            aoff += coord[static_cast<std::size_t>(d)] *
                    astr[static_cast<std::size_t>(d)];
            boff += coord[static_cast<std::size_t>(d)] *
                    bstr[static_cast<std::size_t>(d)];
        }
        for (std::int64_t i = i0; i < i1; ++i) {
            out[i] = applyBinaryScalar(kind, a[aoff], b[boff]);
            for (int d = rank - 1; d >= 0; --d) {
                const auto di = static_cast<std::size_t>(d);
                aoff += astr[di];
                boff += bstr[di];
                if (++coord[di] < outShape.dim(d))
                    break;
                aoff -= astr[di] * outShape.dim(d);
                boff -= bstr[di] * outShape.dim(d);
                coord[di] = 0;
            }
        }
    });
}

// -------------------------------------------------------------------
// Normalizations / softmax
// -------------------------------------------------------------------

void
blockedSoftmax(const float *x, float *out, const ir::Shape &shape,
               int axis, const ParallelRunner &par)
{
    std::int64_t inner = 1;
    for (int i = axis + 1; i < shape.rank(); ++i)
        inner *= shape.dim(i);
    const std::int64_t extent = shape.dim(axis);
    const std::int64_t outer = shape.numElements() / (inner * extent);

    par.run(outer, 1, [&](std::int64_t o0, std::int64_t o1) {
        for (std::int64_t o = o0; o < o1; ++o) {
            for (std::int64_t i = 0; i < inner; ++i) {
                const float *xp = x + o * extent * inner + i;
                float *op = out + o * extent * inner + i;
                float mx = -1e30f;
                for (std::int64_t e = 0; e < extent; ++e)
                    mx = std::max(mx, xp[e * inner]);
                float denom = 0;
                for (std::int64_t e = 0; e < extent; ++e)
                    denom += std::exp(xp[e * inner] - mx);
                for (std::int64_t e = 0; e < extent; ++e)
                    op[e * inner] = std::exp(xp[e * inner] - mx) / denom;
            }
        }
    });
}

void
blockedLayerNorm(const float *x, const float *gamma,
                 std::int64_t gammaLen, const float *beta,
                 std::int64_t betaLen, float *out, std::int64_t outer,
                 std::int64_t inner, const ParallelRunner &par)
{
    par.run(outer, 1, [&](std::int64_t o0, std::int64_t o1) {
        for (std::int64_t o = o0; o < o1; ++o) {
            const float *xp = x + o * inner;
            float *op = out + o * inner;
            float sum = 0;
            for (std::int64_t i = 0; i < inner; ++i)
                sum += xp[i];
            const float mean = sum / static_cast<float>(inner);
            float var = 0;
            for (std::int64_t i = 0; i < inner; ++i)
                var += (xp[i] - mean) * (xp[i] - mean);
            var /= static_cast<float>(inner);
            const float inv = 1.0f / std::sqrt(var + 1e-5f);
            for (std::int64_t i = 0; i < inner; ++i) {
                float v = (xp[i] - mean) * inv;
                if (gamma)
                    v *= gamma[i % gammaLen];
                if (beta)
                    v += beta[i % betaLen];
                op[i] = v;
            }
        }
    });
}

void
blockedInstanceNorm(const float *x, float *out, std::int64_t nc,
                    std::int64_t hw, const ParallelRunner &par)
{
    par.run(nc, 1, [&](std::int64_t o0, std::int64_t o1) {
        for (std::int64_t o = o0; o < o1; ++o) {
            const float *xp = x + o * hw;
            float *op = out + o * hw;
            float sum = 0;
            for (std::int64_t i = 0; i < hw; ++i)
                sum += xp[i];
            const float mean = sum / static_cast<float>(hw);
            float var = 0;
            for (std::int64_t i = 0; i < hw; ++i)
                var += (xp[i] - mean) * (xp[i] - mean);
            var /= static_cast<float>(hw);
            const float inv = 1.0f / std::sqrt(var + 1e-5f);
            for (std::int64_t i = 0; i < hw; ++i)
                op[i] = (xp[i] - mean) * inv;
        }
    });
}

void
blockedBatchNorm(const float *x, const float *scale,
                 std::int64_t scaleLen, const float *bias,
                 std::int64_t biasLen, float *out, std::int64_t n,
                 std::int64_t c, std::int64_t hw,
                 const ParallelRunner &par)
{
    par.run(n * c, 1, [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t p = p0; p < p1; ++p) {
            const std::int64_t ch = p % c;
            const float g = scale[ch % scaleLen];
            const float b = bias[ch % biasLen];
            const float *xp = x + p * hw;
            float *op = out + p * hw;
            for (std::int64_t i = 0; i < hw; ++i)
                op[i] = xp[i] * g + b;
        }
    });
}

} // namespace smartmem::exec
