/**
 * @file
 * Cache-blocked, thread-pooled CPU kernels for the cpu-blocked
 * execution backend, with runtime-dispatched SIMD inner loops.
 *
 * The element-wise and normalization kernels operate on raw row-major
 * float arrays.  The GEMM and convolution kernels additionally accept
 * strided *views* (MatView / PlaneLayout) so the backend can hand them
 * tensors in the plan's packed (vec4) or texture-order physical
 * layouts directly -- the stride arithmetic that used to live only in
 * relayoutCopy runs in the micro-kernel load/store paths instead of
 * forcing a repack at the kernel boundary.
 *
 * Inner loops dispatch over exec::SimdLevel (AVX2 / AVX-512 / NEON
 * micro-kernels behind runtime CPU detection, see simd_dispatch.h);
 * the portable scalar blocked loop is the always-correct fallback.
 * Blocking factors come from TileParams, resolved from the target
 * DeviceProfile rather than hard-coded.
 *
 * Work is split into static contiguous ranges, each element written
 * by exactly one worker, and per-element accumulation order is fixed
 * (ascending k) regardless of partitioning -- so at a fixed SimdLevel
 * results are byte-identical at every thread count, the determinism
 * guarantee tests/cpu_backend_test.cc pins.
 */
#ifndef SMARTMEM_EXEC_KERNELS_BLOCKED_H
#define SMARTMEM_EXEC_KERNELS_BLOCKED_H

#include <cstdint>
#include <functional>
#include <memory>

#include "exec/simd_dispatch.h"
#include "ir/graph.h"
#include "support/thread_pool.h"

namespace smartmem::runtime {
class BufferPool;
}

namespace smartmem::device {
struct DeviceProfile;
}

namespace smartmem::exec {

/**
 * Static-partition parallel driver over an index range.  Owns a
 * fixed-size support::ThreadPool (created once per executor, reused
 * across every kernel launch, so per-kernel overhead is one
 * submit/wait round, not thread creation).
 */
class ParallelRunner
{
  public:
    /** @param threads  0 = SMARTMEM_THREADS env / hardware default. */
    explicit ParallelRunner(int threads);
    ~ParallelRunner();

    ParallelRunner(const ParallelRunner &) = delete;
    ParallelRunner &operator=(const ParallelRunner &) = delete;

    int threads() const { return threads_; }

    /**
     * Invoke fn(begin, end) over a static partition of [0, n) into at
     * most threads() contiguous ranges of at least `grain` indices.
     * Ranges depend only on (n, grain, threads()); each index is
     * processed by exactly one invocation.  Serial (single inline
     * call) when the range is small or the runner has one thread.
     * The first exception (lowest range) is rethrown after all ranges
     * finish.
     */
    void run(std::int64_t n, std::int64_t grain,
             const std::function<void(std::int64_t, std::int64_t)> &fn)
        const;

  private:
    std::unique_ptr<support::ThreadPool> pool_; // null when serial
    int threads_ = 1;
};

/**
 * GEMM blocking factors.  Resolved per device via resolveTileParams;
 * the defaults reproduce the backend's original constants.  Values
 * are sanitized on use: rowTile is clamped to [1, kMaxRowTile] and
 * kBlock to [16, 1 << 20].
 */
struct TileParams
{
    std::int64_t rowTile = 8; ///< A-row tile height per task
    std::int64_t kBlock = 256; ///< reduction panel width kept in L1
};

/** Upper bound on TileParams::rowTile (per-task row-offset scratch is
 *  stack-allocated at this size). */
constexpr std::int64_t kMaxRowTile = 128;

/**
 * Tile parameters for a device: explicit `gemm_row_tile` /
 * `gemm_k_block` calibration fields win when set (> 0); otherwise
 * rowTile derives from simdWidth (clamped to [8, 16]) and kBlock from
 * l1CacheBytes (32 KiB assumed when unset) so one row tile's A panel
 * plus the B panel fit in L1: kBlock = l1 / (16 * rowTile), clamped
 * to [64, 1024].  The built-in mobile profiles (simdWidth 4, no L1
 * field) resolve to the historical {8, 256}.
 */
TileParams resolveTileParams(const device::DeviceProfile &dev);

/**
 * Read-only strided matrix operand for blockedMatMul: element
 * (bi, r, j) lives at data[off(bi) + r * rs + j * cs].  Per-batch
 * offsets come from batchOff when non-null (native packed/texture
 * batch dims), else bi * batchStride.  A row-major [batch, m, k]
 * tensor is {data, k, 1, m * k, nullptr}.
 */
struct MatView
{
    const float *data = nullptr;
    std::int64_t rs = 0;                     ///< row stride (elements)
    std::int64_t cs = 1;                     ///< column stride
    std::int64_t batchStride = 0;
    const std::int64_t *batchOff = nullptr;  ///< optional, size batch

    std::int64_t off(std::int64_t bi) const
    {
        return batchOff != nullptr ? batchOff[bi] : bi * batchStride;
    }
};

/** Mutable counterpart of MatView (the C operand). */
struct MatMutView
{
    float *data = nullptr;
    std::int64_t rs = 0;
    std::int64_t cs = 1;
    std::int64_t batchStride = 0;
    const std::int64_t *batchOff = nullptr;

    std::int64_t off(std::int64_t bi) const
    {
        return batchOff != nullptr ? batchOff[bi] : bi * batchStride;
    }
};

/**
 * Strided accessor for a [N, C, H, W] tensor in its physical layout.
 * The channel dimension may be vec4-packed (NC4HW4 buffer or texture
 * order), in which case its offset contribution is
 * (c / 4) * sc + c % 4; all other dims are affine.  Row-major is
 * {C*H*W, H*W, W, 1, false}.
 */
struct PlaneLayout
{
    std::int64_t sn = 0; ///< batch stride
    std::int64_t sc = 0; ///< channel stride (block stride when packed)
    std::int64_t sh = 0; ///< row stride
    std::int64_t sw = 1; ///< column stride
    bool packedC = false;

    std::int64_t planeOff(std::int64_t n, std::int64_t c) const
    {
        const std::int64_t coff =
            packedC ? (c / 4) * sc + c % 4 : c * sc;
        return n * sn + coff;
    }

    static PlaneLayout rowMajor(std::int64_t c, std::int64_t h,
                                std::int64_t w)
    {
        return PlaneLayout{c * h * w, h * w, w, 1, false};
    }
};

/**
 * C[b] = A[b] x B[b or shared]: batched matmul over strided views
 * with register-tiled SIMD inner loops (dispatch on `simd`, scalar
 * fallback for layouts the vector path cannot address: the B and C
 * column strides must be 1 for the vectorized non-transposed path,
 * the A and B column strides 1 for the vectorized transB path).
 * Logical shapes: A [batch, m, k]; B [k, n] ([n, k] when transB,
 * row stride still MatView::rs); C [batch, m, n].  Parallel over
 * batch x row blocks; per-element accumulation is ascending-k, so
 * output bytes are independent of thread count and tile parameters
 * at a fixed SimdLevel.
 */
void blockedMatMul(const MatView &a, const MatView &b,
                   const MatMutView &c, std::int64_t batch,
                   std::int64_t m, std::int64_t n, std::int64_t k,
                   bool transB, SimdLevel simd, const TileParams &tiles,
                   const ParallelRunner &par);

/**
 * Grouped/standard conv via im2col + blocked GEMM, reading x and
 * writing out through PlaneLayout views (so NC4HW4 / texture-order
 * operands are consumed natively).  Logical shapes: x [N, IC, H, W],
 * w [OC, IC/groups, KH, KW] row-major, out [N, OC, OH, OW].  The
 * output layout must be pixel-linear: ol.sh == ol.sw * ow (row-major
 * and NC4HW4 both are; the caller falls back to a row-major buffer
 * otherwise).  When bias is non-null, bias[c % biasLen] is added to
 * every output pixel of channel c after the GEMM.  The im2col panel
 * comes from `scratch` and is released before returning.  Parallel
 * over column-panel rows and output channels.
 */
void blockedConv2d(const float *x, const PlaneLayout &xl, const float *w,
                   float *out, const PlaneLayout &ol,
                   std::int64_t n_batch, std::int64_t ic, std::int64_t h,
                   std::int64_t wdim, std::int64_t oc, std::int64_t oh,
                   std::int64_t ow, std::int64_t kh, std::int64_t kw,
                   std::int64_t stride, std::int64_t pad,
                   std::int64_t groups, const float *bias,
                   std::int64_t biasLen, SimdLevel simd,
                   const TileParams &tiles, const ParallelRunner &par,
                   runtime::BufferPool &scratch);

/** Depthwise conv, direct-tiled through PlaneLayout views; parallel
 *  over (n, c) planes. */
void blockedDepthwiseConv2d(const float *x, const PlaneLayout &xl,
                            const float *w, float *out,
                            const PlaneLayout &ol, std::int64_t n_batch,
                            std::int64_t c, std::int64_t h,
                            std::int64_t wdim, std::int64_t oh,
                            std::int64_t ow, std::int64_t kh,
                            std::int64_t kw, std::int64_t stride,
                            std::int64_t pad, const ParallelRunner &par);

/** y[i] = unary(x[i]) over n elements, parallel over ranges.  `node`
 *  supplies attribute-dependent kinds (Scale).  x may alias y. */
void blockedUnary(ir::OpKind kind, const ir::Node &node, const float *x,
                  float *y, std::int64_t n, const ParallelRunner &par);

/** Scalar unary application (shared with the epilogue fuser). */
float applyUnaryScalar(ir::OpKind kind, float x, const ir::Node &node);

/** Scalar binary application (shared with the epilogue fuser). */
float applyBinaryScalar(ir::OpKind kind, float a, float b);

/**
 * Broadcast binary out = a op b where `a` has the output shape and
 * `b` broadcasts per bStride: for every output index i the right
 * operand is b[broadcastOffset(i)].  Fast paths: same-shape
 * (linear), scalar, and trailing-suffix broadcast; the generic path
 * walks an odometer.  Parallel over ranges of the output.
 */
void blockedBinary(ir::OpKind kind, const float *a, const float *b,
                   float *out, const ir::Shape &outShape,
                   const ir::Shape &aShape, const ir::Shape &bShape,
                   const ParallelRunner &par);

/** Softmax over `axis` (reference semantics), parallel over slices. */
void blockedSoftmax(const float *x, float *out, const ir::Shape &shape,
                    int axis, const ParallelRunner &par);

/**
 * Streaming fused attention: out = softmax(scale * Q.K^T + bias) . V
 * without materializing the [n, m] score matrix.  Each output row is
 * produced by one online-softmax sweep over k-blocks of
 * TileParams::kBlock keys: the block's scores come from the
 * SIMD-dispatched dot micro-kernel, a running row maximum rescales the
 * partial accumulator and denominator (exp(oldMax - newMax)), and the
 * probability-weighted V rows are folded in with a register-tiled
 * four-row GEMM over the exp'd score blocks of a query-row quad.
 * Peak live scratch per worker is 4 * (kBlock + dv) floats.
 *
 * Operands are row-major: q [batch, n, dk], k [batch, m, dk],
 * v [batch, m, dv], optional bias [n, m] (biasBatched selects a
 * per-batch [batch, n, m] plane), out [batch, n, dv].
 *
 * Parallel over batch x row tiles; every row is swept in ascending-j
 * order with block boundaries fixed by `tiles` alone, so output bytes
 * are independent of thread count at a fixed SimdLevel.
 */
void blockedFusedAttention(const float *q, const float *k, const float *v,
                           const float *bias, bool biasBatched,
                           float scale, float *out, std::int64_t batch,
                           std::int64_t n, std::int64_t dk,
                           std::int64_t m, std::int64_t dv,
                           SimdLevel simd, const TileParams &tiles,
                           const ParallelRunner &par);

/** LayerNorm over the last dim with optional gamma/beta, parallel
 *  over outer slices. */
void blockedLayerNorm(const float *x, const float *gamma,
                      std::int64_t gammaLen, const float *beta,
                      std::int64_t betaLen, float *out,
                      std::int64_t outer, std::int64_t inner,
                      const ParallelRunner &par);

/** InstanceNorm over H,W per (N,C) plane, parallel over planes. */
void blockedInstanceNorm(const float *x, float *out, std::int64_t nc,
                         std::int64_t hw, const ParallelRunner &par);

/** Folded-stats BatchNorm (per-channel affine), parallel over (n,c). */
void blockedBatchNorm(const float *x, const float *scale,
                      std::int64_t scaleLen, const float *bias,
                      std::int64_t biasLen, float *out, std::int64_t n,
                      std::int64_t c, std::int64_t hw,
                      const ParallelRunner &par);

} // namespace smartmem::exec

#endif // SMARTMEM_EXEC_KERNELS_BLOCKED_H
