/**
 * @file
 * Cache-blocked, thread-pooled CPU kernels for the cpu-blocked
 * execution backend.
 *
 * All kernels operate on raw row-major float arrays (the logical
 * compute view; physical layouts are handled by the backend's
 * pack/unpack paths in cpu_backend.cc).  Work is split into static
 * contiguous ranges, each written by exactly one worker, so results
 * are byte-identical at every thread count -- the determinism
 * guarantee tests/cpu_backend_test.cc pins.
 */
#ifndef SMARTMEM_EXEC_KERNELS_BLOCKED_H
#define SMARTMEM_EXEC_KERNELS_BLOCKED_H

#include <cstdint>
#include <functional>
#include <memory>

#include "ir/graph.h"
#include "support/thread_pool.h"

namespace smartmem::runtime {
class BufferPool;
}

namespace smartmem::exec {

/**
 * Static-partition parallel driver over an index range.  Owns a
 * fixed-size support::ThreadPool (created once per executor, reused
 * across every kernel launch, so per-kernel overhead is one
 * submit/wait round, not thread creation).
 */
class ParallelRunner
{
  public:
    /** @param threads  0 = SMARTMEM_THREADS env / hardware default. */
    explicit ParallelRunner(int threads);
    ~ParallelRunner();

    ParallelRunner(const ParallelRunner &) = delete;
    ParallelRunner &operator=(const ParallelRunner &) = delete;

    int threads() const { return threads_; }

    /**
     * Invoke fn(begin, end) over a static partition of [0, n) into at
     * most threads() contiguous ranges of at least `grain` indices.
     * Ranges depend only on (n, grain, threads()); each index is
     * processed by exactly one invocation.  Serial (single inline
     * call) when the range is small or the runner has one thread.
     * The first exception (lowest range) is rethrown after all ranges
     * finish.
     */
    void run(std::int64_t n, std::int64_t grain,
             const std::function<void(std::int64_t, std::int64_t)> &fn)
        const;

  private:
    std::unique_ptr<support::ThreadPool> pool_; // null when serial
    int threads_ = 1;
};

/**
 * C[b] = A[b] x B[b or shared]: row-major batched matmul with
 * register-tiled rows and k-blocking.  A is [batch, m, k]; B is
 * [k, n] ([n, k] when transB), batched when bBatched; C is
 * [batch, m, n].  Parallel over batch x row blocks.
 */
void blockedMatMul(const float *a, const float *b, float *c,
                   std::int64_t batch, bool bBatched, std::int64_t m,
                   std::int64_t n, std::int64_t k, bool transB,
                   const ParallelRunner &par);

/**
 * Grouped/standard conv via im2col + blocked GEMM.  x is
 * [N, IC, H, W], w is [OC, IC/groups, KH, KW], out is
 * [N, OC, OH, OW].  The im2col panel comes from `scratch` and is
 * released before returning.  Parallel over column-panel rows and
 * output channels.
 */
void blockedConv2d(const float *x, const float *w, float *out,
                   std::int64_t n_batch, std::int64_t ic, std::int64_t h,
                   std::int64_t wdim, std::int64_t oc, std::int64_t oh,
                   std::int64_t ow, std::int64_t kh, std::int64_t kw,
                   std::int64_t stride, std::int64_t pad,
                   std::int64_t groups, const ParallelRunner &par,
                   runtime::BufferPool &scratch);

/** Depthwise conv, direct-tiled; parallel over (n, c) planes. */
void blockedDepthwiseConv2d(const float *x, const float *w, float *out,
                            std::int64_t n_batch, std::int64_t c,
                            std::int64_t h, std::int64_t wdim,
                            std::int64_t oh, std::int64_t ow,
                            std::int64_t kh, std::int64_t kw,
                            std::int64_t stride, std::int64_t pad,
                            const ParallelRunner &par);

/** y[i] = unary(x[i]) over n elements, parallel over ranges.  `node`
 *  supplies attribute-dependent kinds (Scale).  x may alias y. */
void blockedUnary(ir::OpKind kind, const ir::Node &node, const float *x,
                  float *y, std::int64_t n, const ParallelRunner &par);

/** Scalar unary application (shared with the epilogue fuser). */
float applyUnaryScalar(ir::OpKind kind, float x, const ir::Node &node);

/** Scalar binary application (shared with the epilogue fuser). */
float applyBinaryScalar(ir::OpKind kind, float a, float b);

/**
 * Broadcast binary out = a op b where `a` has the output shape and
 * `b` broadcasts per bStride: for every output index i the right
 * operand is b[broadcastOffset(i)].  Fast paths: same-shape
 * (linear), scalar, and trailing-suffix broadcast; the generic path
 * walks an odometer.  Parallel over ranges of the output.
 */
void blockedBinary(ir::OpKind kind, const float *a, const float *b,
                   float *out, const ir::Shape &outShape,
                   const ir::Shape &aShape, const ir::Shape &bShape,
                   const ParallelRunner &par);

/** Softmax over `axis` (reference semantics), parallel over slices. */
void blockedSoftmax(const float *x, float *out, const ir::Shape &shape,
                    int axis, const ParallelRunner &par);

/** LayerNorm over the last dim with optional gamma/beta, parallel
 *  over outer slices. */
void blockedLayerNorm(const float *x, const float *gamma,
                      std::int64_t gammaLen, const float *beta,
                      std::int64_t betaLen, float *out,
                      std::int64_t outer, std::int64_t inner,
                      const ParallelRunner &par);

/** InstanceNorm over H,W per (N,C) plane, parallel over planes. */
void blockedInstanceNorm(const float *x, float *out, std::int64_t nc,
                         std::int64_t hw, const ParallelRunner &par);

/** Folded-stats BatchNorm (per-channel affine), parallel over (n,c). */
void blockedBatchNorm(const float *x, const float *scale,
                      std::int64_t scaleLen, const float *bias,
                      std::int64_t biasLen, float *out, std::int64_t n,
                      std::int64_t c, std::int64_t hw,
                      const ParallelRunner &par);

} // namespace smartmem::exec

#endif // SMARTMEM_EXEC_KERNELS_BLOCKED_H
