#include "exec/cpu_backend.h"

#include <cstring>
#include <optional>
#include <utility>

#include "exec/executor.h"
#include "exec/kernels_blocked.h"
#include "index/index_map.h"
#include "runtime/memory_pool.h"
#include "support/error.h"

namespace smartmem::exec {

using ir::Layout;
using ir::Node;
using ir::OpKind;
using ir::Shape;
using ir::ValueId;
using runtime::ExecutionPlan;
using runtime::Kernel;
using runtime::KernelInput;

namespace {

bool
isRowMajorLayout(const Layout &l)
{
    if (l.packedDim() >= 0)
        return false;
    const auto &ord = l.order();
    for (std::size_t i = 0; i < ord.size(); ++i)
        if (ord[i] != static_cast<int>(i))
            return false;
    return true;
}

/** Offset contribution of logical coordinate c on dimension d. */
inline std::int64_t
dimContribution(std::int64_t c, std::int64_t stride, bool packed)
{
    return packed ? (c / 4) * stride + c % 4 : c * stride;
}

/**
 * Copy `shape` elements between two physical layouts, walking logical
 * coordinates row-major with incrementally maintained offsets (no
 * per-element coordinate vectors or physicalOffset() calls).
 * Parallel over contiguous logical-index ranges: each chunk seeds its
 * offsets from a single delinearize, then walks the same odometer, so
 * every element is written by exactly one worker and the output is
 * byte-identical at any thread count (it is a pure copy).
 */
void
relayoutCopy(const Shape &shape, const float *src, const Layout &srcL,
             float *dst, const Layout &dstL, const ParallelRunner &par)
{
    const std::int64_t total = shape.numElements();
    if (isRowMajorLayout(srcL) && isRowMajorLayout(dstL)) {
        std::memcpy(dst, src,
                    static_cast<std::size_t>(total) * sizeof(float));
        return;
    }
    const int rank = shape.rank();
    const auto sstr = srcL.strides(shape);
    const auto dstr = dstL.strides(shape);
    const int spack = srcL.packedDim();
    const int dpack = dstL.packedDim();
    par.run(total, 4096, [&](std::int64_t i0, std::int64_t i1) {
        std::vector<std::int64_t> coord = ir::delinearize(i0, shape);
        std::int64_t soff = 0, doff = 0;
        for (int d = 0; d < rank; ++d) {
            const auto di = static_cast<std::size_t>(d);
            soff += dimContribution(coord[di], sstr[di], d == spack);
            doff += dimContribution(coord[di], dstr[di], d == dpack);
        }
        for (std::int64_t i = i0; i < i1; ++i) {
            dst[doff] = src[soff];
            for (int d = rank - 1; d >= 0; --d) {
                const auto di = static_cast<std::size_t>(d);
                const std::int64_t c = coord[di];
                soff -= dimContribution(c, sstr[di], d == spack);
                doff -= dimContribution(c, dstr[di], d == dpack);
                if (c + 1 < shape.dim(d)) {
                    coord[di] = c + 1;
                    soff += dimContribution(c + 1, sstr[di], d == spack);
                    doff += dimContribution(c + 1, dstr[di], d == dpack);
                    break;
                }
                coord[di] = 0; // contribution of coordinate 0 is 0
            }
        }
    });
}

/**
 * Strided accessor over a buffer stored in a non-row-major layout.
 * At most one dimension (packedDim) is vec4-packed -- its offset
 * contribution is (c/4)*stride + c%4; every other dim is affine.
 * Normalization: a packed dim whose raw stride equals the pack factor
 * (texture x-axis, packed-innermost) or whose extent fits one lane
 * group contributes exactly c, so it is rewritten to an affine dim of
 * stride 1 -- that is what makes flat-texture operands directly
 * consumable by the SIMD GEMM.
 */
struct NativeView
{
    const float *data = nullptr;
    std::vector<std::int64_t> str;
    int packedDim = -1;
};

NativeView
makeNativeView(const float *data, const Layout &l, const Shape &shape)
{
    NativeView v;
    v.data = data;
    v.str = l.strides(shape);
    v.packedDim = l.packedDim();
    if (v.packedDim >= 0) {
        auto &s = v.str[static_cast<std::size_t>(v.packedDim)];
        if (s == 4 || shape.dim(v.packedDim) <= 4) {
            s = 1;
            v.packedDim = -1;
        }
    }
    return v;
}

/** Physical offset of each flattened leading-dims index (matmul batch
 *  coordinates), honoring a packed batch dim. */
std::vector<std::int64_t>
batchOffsets(const NativeView &vw, const Shape &s, int nBatchDims,
             std::int64_t batch)
{
    std::vector<std::int64_t> off(static_cast<std::size_t>(batch), 0);
    std::vector<std::int64_t> coord(
        static_cast<std::size_t>(nBatchDims), 0);
    for (std::int64_t bi = 0; bi < batch; ++bi) {
        std::int64_t o = 0;
        for (int d = 0; d < nBatchDims; ++d)
            o += dimContribution(coord[static_cast<std::size_t>(d)],
                                 vw.str[static_cast<std::size_t>(d)],
                                 d == vw.packedDim);
        off[static_cast<std::size_t>(bi)] = o;
        for (int d = nBatchDims - 1; d >= 0; --d) {
            const auto di = static_cast<std::size_t>(d);
            if (++coord[di] < s.dim(d))
                break;
            coord[di] = 0;
        }
    }
    return off;
}

/**
 * dst[i] = src[phys(map(coord(i)))]: reproduce an eliminated
 * transformation chain by reading the stored source (in its physical
 * layout) through the composed IndexMap.  Parallel over output
 * ranges; every element is independent.
 */
void
materializeMapped(const index::IndexMap &map, const float *src,
                  const Layout &srcL, const Shape &srcShape, float *dst,
                  const ParallelRunner &par)
{
    const Shape &os = map.outputShape();
    const auto sstr = srcL.strides(srcShape);
    const int spack = srcL.packedDim();
    // Flatten the composed expressions once; the per-element loop
    // then runs postfix programs instead of recursing shared_ptr
    // trees (a 2-4x win on gather/reshape-heavy chains).
    const index::CompiledExprs exprs =
        index::CompiledExprs::compile(map.exprs());
    const int in_rank = srcShape.rank();
    const int out_rank = os.rank();
    par.run(os.numElements(), 1024,
            [&](std::int64_t i0, std::int64_t i1) {
        std::vector<std::int64_t> coord = ir::delinearize(i0, os);
        std::vector<std::int64_t> stack(exprs.stackDepth());
        for (std::int64_t i = i0; i < i1; ++i) {
            std::int64_t off = 0;
            for (int d = 0; d < in_rank; ++d) {
                const std::int64_t c = exprs.eval(d, coord, stack);
                off += dimContribution(
                    c, sstr[static_cast<std::size_t>(d)], d == spack);
            }
            dst[i] = src[off];
            for (int d = out_rank - 1; d >= 0; --d) {
                const auto di = static_cast<std::size_t>(d);
                if (++coord[di] < os.dim(d))
                    break;
                coord[di] = 0;
            }
        }
    });
}

bool
isUnaryKind(OpKind k)
{
    switch (k) {
      case OpKind::Relu:
      case OpKind::Gelu:
      case OpKind::Silu:
      case OpKind::Sigmoid:
      case OpKind::Tanh:
      case OpKind::Exp:
      case OpKind::Sqrt:
      case OpKind::Neg:
      case OpKind::Identity:
      case OpKind::Scale:
        return true;
      default:
        return false;
    }
}

bool
isBinaryKind(OpKind k)
{
    return k == OpKind::Add || k == OpKind::Sub || k == OpKind::Mul ||
           k == OpKind::Div;
}

/**
 * If `other` (shape obs) broadcast against `os` reduces to
 * "other[i % m]" for row-major linear index i -- covering same-shape
 * (m = n), scalars (m = 1) and trailing-suffix operands such as bias
 * rows -- return m; otherwise -1.
 */
std::int64_t
suffixBroadcastModulo(const Shape &os, const Shape &obs)
{
    if (obs.rank() > os.rank())
        return -1;
    std::int64_t m = 1;
    int d = os.rank() - 1;
    int od = obs.rank() - 1;
    for (; od >= 0; --od, --d) {
        if (obs.dim(od) == 1 && os.dim(d) != 1)
            break; // rest must broadcast
        if (obs.dim(od) != os.dim(d))
            return -1;
        m *= obs.dim(od);
    }
    for (; od >= 0; --od) {
        if (obs.dim(od) != 1)
            return -1;
    }
    return m;
}

/** One folded element-wise op in a fused epilogue pass. */
struct EpilogueStep
{
    OpKind kind = OpKind::Identity;
    const Node *node = nullptr;   // for attribute-dependent unaries
    const float *other = nullptr; // binary right/left operand
    std::int64_t otherModulo = 1; // other[i % otherModulo]
    bool reversed = false;        // v = other op v (v was operand 1)
    bool selfOperand = false;     // v = v op v
};

/** A value materialized while executing one kernel.  Usually a
 *  row-major scratch view; a kernel whose anchor op stored its result
 *  directly in the kernel's chosen output layout sets inOutLayout so
 *  publishOutput() can skip the repack. */
struct LocalBuf
{
    const float *data = nullptr;
    bool owned = false; // release to the pool at kernel end
    bool inOutLayout = false;
};

/** A stored (value, copy) in its chosen physical layout. */
struct StoredBuf
{
    const float *data = nullptr;
    bool owned = false; // pool-owned (false: borrowed input/constant)
    Layout layout;
};

// -------------------------------------------------------------------
// PlanRunner: one CpuBackend::run() invocation
// -------------------------------------------------------------------

class PlanRunner
{
  public:
    PlanRunner(const ExecutionPlan &plan,
               const std::map<ValueId, Tensor> &inputs,
               const CpuBackendOptions &opts)
        : plan_(plan), graph_(plan.graph), inputs_(inputs),
          par_(opts.threads), simd_(activeSimdLevel()),
          constSynth_(opts.seed), lastUse_(runtime::lastUses(plan))
    {
        if (opts.gemmRowTile > 0)
            tiles_.rowTile = opts.gemmRowTile;
        if (opts.gemmKBlock > 0)
            tiles_.kBlock = opts.gemmKBlock;
    }

    std::vector<Tensor> run(CpuBackendStats *stats_out);

  private:
    const Shape &shapeOf(ValueId v) const
    {
        return graph_.value(v).shape;
    }

    float *alloc(std::int64_t elems)
    {
        return pool_.allocateFloats(elems);
    }

    /** Row-major constant contents, synthesized once and resident for
     *  the whole run (the paper's weights stay in memory). */
    const float *constantData(ValueId v);

    /** The stored buffer for (value, copy), falling back to model
     *  inputs and constants for copy 0. */
    StoredBuf resolveStored(ValueId v, int copy);

    /** Row-major view of `v` inside the current kernel, materializing
     *  substitutes through their read maps on first use. */
    const float *resolveLocal(const Kernel &k, ValueId v);

    /** Strided view of `v`'s *stored* buffer for layout-native
     *  consumption, or nullopt when the value must go through
     *  resolveLocal (already materialized locally, substituted through
     *  a read map, or stored row-major anyway). */
    std::optional<NativeView> tryStoredView(ValueId v);

    /** Stride view of the kernel's output layout when the anchor op
     *  may store into it directly: single-node kernel whose node
     *  produces the kernel output in a non-row-major layout. */
    std::optional<NativeView> tryNativeStore(const Kernel &k,
                                             const Node &node);

    void runRelayoutKernel(const Kernel &k);
    void runComputeKernel(const Kernel &k);
    void evalNodeBlocked(const Kernel &k, const Node &node);
    bool tryFoldEpilogue(const Kernel &k, ValueId cur, const Node &next,
                         EpilogueStep *step);
    void publishOutput(const Kernel &k);
    void releaseDead(std::size_t kernel_idx);

    /** Fallback for rare ops: copy row-major locals into reference
     *  Tensors and reuse exec::evalNode. */
    void evalViaReference(const Kernel &k, const Node &node);

    const ExecutionPlan &plan_;
    const ir::Graph &graph_;
    const std::map<ValueId, Tensor> &inputs_;
    ParallelRunner par_;
    SimdLevel simd_;
    TileParams tiles_;
    Executor constSynth_;
    runtime::BufferPool pool_;
    CpuBackendStats stats_;

    std::map<std::pair<ValueId, int>, std::size_t> lastUse_;
    std::map<std::pair<ValueId, int>, StoredBuf> env_;
    std::map<ValueId, const float *> constants_;

    // Per-kernel state.
    std::map<ValueId, LocalBuf> locals_;
    std::map<ValueId, const KernelInput *> kinBySubstitute_;
};

const float *
PlanRunner::constantData(ValueId v)
{
    auto it = constants_.find(v);
    if (it != constants_.end())
        return it->second;
    Tensor t = constSynth_.synthesizeConstant(graph_, v);
    float *buf = alloc(t.numElements());
    std::memcpy(buf, t.data(),
                static_cast<std::size_t>(t.numElements()) *
                    sizeof(float));
    constants_[v] = buf;
    return buf;
}

StoredBuf
PlanRunner::resolveStored(ValueId v, int copy)
{
    auto it = env_.find({v, copy});
    if (it != env_.end())
        return it->second;
    SM_ASSERT(copy == 0, "missing stored copy of value " +
                             std::to_string(v));
    const Node &producer = graph_.node(graph_.value(v).producer);
    if (producer.kind == OpKind::Input) {
        auto in = inputs_.find(v);
        SM_REQUIRE(in != inputs_.end(),
                   "missing model input: " + producer.name);
        SM_REQUIRE(in->second.shape() == shapeOf(v),
                   "input shape mismatch: " + producer.name);
        return {in->second.data(), false,
                Layout::rowMajor(shapeOf(v).rank())};
    }
    if (producer.kind == OpKind::Constant) {
        return {constantData(v), false,
                Layout::rowMajor(shapeOf(v).rank())};
    }
    smPanic("value " + std::to_string(v) +
            " read before it was produced");
}

const float *
PlanRunner::resolveLocal(const Kernel &k, ValueId v)
{
    auto lit = locals_.find(v);
    if (lit != locals_.end())
        return lit->second.data;

    auto kit = kinBySubstitute_.find(v);
    if (kit != kinBySubstitute_.end()) {
        const KernelInput &in = *kit->second;
        if (in.substitute != in.source) {
            // Eliminated chain: read the stored source through the
            // composed map -- one pass for the whole chain.
            SM_ASSERT(in.readMap.has_value(),
                      "substituted input without a read map");
            const float *src_data = nullptr;
            Layout src_layout = Layout::rowMajor(
                shapeOf(in.source).rank());
            if (in.internalSource) {
                auto sit = locals_.find(in.source);
                SM_ASSERT(sit != locals_.end(),
                          "internal source not yet produced in " +
                              k.name);
                src_data = sit->second.data;
            } else {
                StoredBuf s = resolveStored(in.source, in.sourceCopy);
                src_data = s.data;
                src_layout = s.layout;
            }
            float *dst = alloc(shapeOf(v).numElements());
            materializeMapped(*in.readMap, src_data, src_layout,
                              shapeOf(in.source), dst, par_);
            ++stats_.substitutesMaterialized;
            locals_[v] = {dst, true};
            return dst;
        }
        StoredBuf s = resolveStored(in.source, in.sourceCopy);
        if (isRowMajorLayout(s.layout)) {
            locals_[v] = {s.data, false};
            return s.data;
        }
        // Unpack the chosen physical layout into the compute view.
        const Shape &shape = shapeOf(v);
        float *dst = alloc(shape.numElements());
        relayoutCopy(shape, s.data, s.layout, dst,
                     Layout::rowMajor(shape.rank()), par_);
        stats_.bytesRelayouted +=
            shape.numElements() *
            static_cast<std::int64_t>(sizeof(float));
        locals_[v] = {dst, true};
        return dst;
    }

    // Not an external kernel input: constants (implicit inputs) and,
    // defensively, model inputs.
    const Node &producer = graph_.node(graph_.value(v).producer);
    if (producer.kind == OpKind::Constant)
        return constantData(v);
    if (producer.kind == OpKind::Input) {
        StoredBuf s = resolveStored(v, 0);
        return s.data;
    }
    smPanic("fused node input not available in " + k.name + ": value " +
            std::to_string(v));
}

std::optional<NativeView>
PlanRunner::tryStoredView(ValueId v)
{
    if (locals_.count(v))
        return std::nullopt; // already materialized row-major
    auto kit = kinBySubstitute_.find(v);
    if (kit == kinBySubstitute_.end())
        return std::nullopt; // constant / implicit input (row-major)
    const KernelInput &in = *kit->second;
    if (in.substitute != in.source)
        return std::nullopt; // read-map chain: materialize instead
    StoredBuf s = resolveStored(in.source, in.sourceCopy);
    if (isRowMajorLayout(s.layout))
        return std::nullopt; // zero-copy row-major path is free
    return makeNativeView(s.data, s.layout, shapeOf(v));
}

std::optional<NativeView>
PlanRunner::tryNativeStore(const Kernel &k, const Node &node)
{
    if (k.fusedNodes.size() != 1 || node.output != k.output)
        return std::nullopt;
    if (isRowMajorLayout(k.outLayout))
        return std::nullopt;
    return makeNativeView(nullptr, k.outLayout, shapeOf(node.output));
}

void
PlanRunner::runRelayoutKernel(const Kernel &k)
{
    SM_ASSERT(k.inputs.size() == 1,
              "relayout kernel with != 1 input: " + k.name);
    const KernelInput &in = k.inputs[0];
    StoredBuf src = resolveStored(in.source, in.sourceCopy);
    const Shape &shape = shapeOf(k.output);
    float *dst = alloc(k.outLayout.storageElements(shape));
    relayoutCopy(shape, src.data, src.layout, dst, k.outLayout, par_);
    stats_.bytesRelayouted +=
        shape.numElements() * static_cast<std::int64_t>(sizeof(float));
    ++stats_.relayoutKernels;
    env_[{k.output, k.copyIndex}] = {dst, true, k.outLayout};
}

bool
PlanRunner::tryFoldEpilogue(const Kernel &k, ValueId cur,
                            const Node &next, EpilogueStep *step)
{
    // The folded value must die here: consumed only by `next`, not a
    // graph output, and not the source of any read-map input.
    if (graph_.consumers(cur) != std::vector<ir::NodeId>{next.id})
        return false;
    for (ValueId out : graph_.outputIds())
        if (out == cur)
            return false;
    for (const KernelInput &in : k.inputs)
        if (in.source == cur)
            return false;
    if (shapeOf(next.output) != shapeOf(cur))
        return false;

    if (isUnaryKind(next.kind)) {
        if (next.inputs[0] != cur)
            return false;
        *step = EpilogueStep{};
        step->kind = next.kind;
        step->node = &next;
        return true;
    }
    if (!isBinaryKind(next.kind))
        return false;
    const bool lhs = next.inputs[0] == cur;
    const bool rhs = next.inputs[1] == cur;
    if (!lhs && !rhs)
        return false;
    *step = EpilogueStep{};
    step->kind = next.kind;
    step->node = &next;
    if (lhs && rhs) {
        step->selfOperand = true;
        return true;
    }
    const ValueId other = lhs ? next.inputs[1] : next.inputs[0];
    const std::int64_t mod =
        suffixBroadcastModulo(shapeOf(cur), shapeOf(other));
    if (mod < 0)
        return false;
    // Resolving may materialize a substitute; that work is needed by
    // the op regardless of how it executes.
    step->other = resolveLocal(k, other);
    step->otherModulo = mod;
    step->reversed = rhs;
    return true;
}

void
PlanRunner::evalNodeBlocked(const Kernel &k, const Node &node)
{
    const Shape &os = shapeOf(node.output);
    switch (node.kind) {
      case OpKind::Conv2d:
      case OpKind::GroupConv2d:
      case OpKind::DepthwiseConv2d: {
        const Shape &xs = shapeOf(node.inputs[0]);
        const Shape &ws = shapeOf(node.inputs[1]);
        const std::int64_t stride = node.attrs.getInt("stride", 1);
        const std::int64_t pad = node.attrs.getInt("pad", 0);
        const bool depthwise = node.kind == OpKind::DepthwiseConv2d;

        // Input view: consume a stored packed/texture activation
        // in place when only the channel dim (if any) is packed.
        PlaneLayout xl =
            PlaneLayout::rowMajor(xs.dim(1), xs.dim(2), xs.dim(3));
        const float *x = nullptr;
        if (auto nv = tryStoredView(node.inputs[0]);
            nv && xs.rank() == 4 &&
            (nv->packedDim == -1 || nv->packedDim == 1)) {
            x = nv->data;
            xl = PlaneLayout{nv->str[0], nv->str[1], nv->str[2],
                             nv->str[3], nv->packedDim == 1};
            ++stats_.nativeLayoutViews;
        } else {
            x = resolveLocal(k, node.inputs[0]);
        }
        const float *w = resolveLocal(k, node.inputs[1]);
        const float *bias = nullptr;
        std::int64_t biasLen = 1;
        if (node.inputs.size() > 2) {
            // Folded conv+batchnorm bias: per-output-channel add after
            // accumulation, matching evalConv's ordering exactly.
            bias = resolveLocal(k, node.inputs[2]);
            biasLen = shapeOf(node.inputs[2]).numElements();
        }

        // Output view: store straight into the kernel's chosen layout
        // when the im2col GEMM can address it (pixel-linear rows; the
        // channel dim may be vec4-packed).
        PlaneLayout ol =
            PlaneLayout::rowMajor(os.dim(1), os.dim(2), os.dim(3));
        float *out = nullptr;
        bool nativeStore = false;
        if (auto ov = tryNativeStore(k, node);
            ov && os.rank() == 4 &&
            (ov->packedDim == -1 || ov->packedDim == 1) &&
            ov->str[2] == ov->str[3] * os.dim(3)) {
            out = alloc(k.outLayout.storageElements(os));
            ol = PlaneLayout{ov->str[0], ov->str[1], ov->str[2],
                             ov->str[3], ov->packedDim == 1};
            nativeStore = true;
            ++stats_.nativeLayoutStores;
        } else {
            out = alloc(os.numElements());
        }

        if (depthwise) {
            blockedDepthwiseConv2d(x, xl, w, out, ol, xs.dim(0),
                                   xs.dim(1), xs.dim(2), xs.dim(3),
                                   os.dim(2), os.dim(3), ws.dim(2),
                                   ws.dim(3), stride, pad, par_);
            if (bias) {
                for (std::int64_t n = 0; n < os.dim(0); ++n) {
                    for (std::int64_t c = 0; c < os.dim(1); ++c) {
                        const float bv = bias[c % biasLen];
                        float *p = out + ol.planeOff(n, c);
                        for (std::int64_t y = 0; y < os.dim(2); ++y)
                            for (std::int64_t xo = 0; xo < os.dim(3);
                                 ++xo)
                                p[y * ol.sh + xo * ol.sw] += bv;
                    }
                }
            }
        } else {
            const std::int64_t groups = node.attrs.getInt("groups", 1);
            blockedConv2d(x, xl, w, out, ol, xs.dim(0), xs.dim(1),
                          xs.dim(2), xs.dim(3), os.dim(1), os.dim(2),
                          os.dim(3), ws.dim(2), ws.dim(3), stride, pad,
                          groups, bias, biasLen, simd_, tiles_, par_,
                          pool_);
        }
        locals_[node.output] = {out, true, nativeStore};
        return;
      }
      case OpKind::MatMul:
      case OpKind::BatchMatMul: {
        const Shape &as = shapeOf(node.inputs[0]);
        const Shape &bs = shapeOf(node.inputs[1]);
        const bool trans_b = node.attrs.getInt("transB", 0) != 0;
        const std::int64_t m = as.dim(as.rank() - 2);
        const std::int64_t kk = as.dim(as.rank() - 1);
        const std::int64_t n = os.dim(os.rank() - 1);
        std::int64_t batch = 1;
        for (int i = 0; i < os.rank() - 2; ++i)
            batch *= os.dim(i);

        // A stored operand is consumable in place when its matrix
        // dims are affine after normalization (a packed *batch* dim
        // is fine -- it only shifts the per-batch base offset).
        auto matrixDimsAffine = [](const NativeView &nv, int rank) {
            return nv.packedDim != rank - 2 && nv.packedDim != rank - 1;
        };
        auto leadingProduct = [](const Shape &s) {
            std::int64_t p = 1;
            for (int i = 0; i < s.rank() - 2; ++i)
                p *= s.dim(i);
            return p;
        };

        std::vector<std::int64_t> aOff, bOff, cOff;
        MatView av, bv;
        if (auto nv = tryStoredView(node.inputs[0]);
            nv && matrixDimsAffine(*nv, as.rank()) &&
            leadingProduct(as) == batch) {
            const auto r = static_cast<std::size_t>(as.rank());
            av.data = nv->data;
            av.rs = nv->str[r - 2];
            av.cs = nv->str[r - 1];
            aOff = batchOffsets(*nv, as, as.rank() - 2, batch);
            av.batchOff = aOff.data();
            ++stats_.nativeLayoutViews;
        } else {
            av.data = resolveLocal(k, node.inputs[0]);
            av.rs = kk;
            av.cs = 1;
            av.batchStride = m * kk;
        }
        if (auto nv = tryStoredView(node.inputs[1]);
            nv && matrixDimsAffine(*nv, bs.rank()) &&
            (bs.rank() <= 2 || leadingProduct(bs) == batch)) {
            const auto r = static_cast<std::size_t>(bs.rank());
            bv.data = nv->data;
            bv.rs = nv->str[r - 2];
            bv.cs = nv->str[r - 1];
            if (bs.rank() > 2) {
                bOff = batchOffsets(*nv, bs, bs.rank() - 2, batch);
                bv.batchOff = bOff.data();
            } // else: batchStride 0, one shared matrix
            ++stats_.nativeLayoutViews;
        } else {
            bv.data = resolveLocal(k, node.inputs[1]);
            bv.rs = trans_b ? kk : n;
            bv.cs = 1;
            bv.batchStride = bs.rank() > 2 ? kk * n : 0;
        }

        MatMutView cv;
        float *out = nullptr;
        bool nativeStore = false;
        if (auto ov = tryNativeStore(k, node);
            ov && matrixDimsAffine(*ov, os.rank())) {
            const auto r = static_cast<std::size_t>(os.rank());
            out = alloc(k.outLayout.storageElements(os));
            cv.data = out;
            cv.rs = ov->str[r - 2];
            cv.cs = ov->str[r - 1];
            cOff = batchOffsets(*ov, os, os.rank() - 2, batch);
            cv.batchOff = cOff.data();
            nativeStore = true;
            ++stats_.nativeLayoutStores;
        } else {
            out = alloc(os.numElements());
            cv.data = out;
            cv.rs = n;
            cv.cs = 1;
            cv.batchStride = m * n;
        }

        blockedMatMul(av, bv, cv, batch, m, n, kk, trans_b, simd_,
                      tiles_, par_);
        locals_[node.output] = {out, true, nativeStore};
        return;
      }
      case OpKind::LayerNorm: {
        const float *x = resolveLocal(k, node.inputs[0]);
        const float *gamma = node.inputs.size() > 1
                                 ? resolveLocal(k, node.inputs[1])
                                 : nullptr;
        const float *beta = node.inputs.size() > 2
                                ? resolveLocal(k, node.inputs[2])
                                : nullptr;
        const std::int64_t inner = os.dim(os.rank() - 1);
        float *out = alloc(os.numElements());
        blockedLayerNorm(
            x, gamma,
            gamma ? shapeOf(node.inputs[1]).numElements() : 1, beta,
            beta ? shapeOf(node.inputs[2]).numElements() : 1, out,
            os.numElements() / inner, inner, par_);
        locals_[node.output] = {out, true};
        return;
      }
      case OpKind::InstanceNorm: {
        const float *x = resolveLocal(k, node.inputs[0]);
        const std::int64_t hw = os.dim(2) * os.dim(3);
        float *out = alloc(os.numElements());
        blockedInstanceNorm(x, out, os.dim(0) * os.dim(1), hw, par_);
        locals_[node.output] = {out, true};
        return;
      }
      case OpKind::BatchNorm: {
        const float *x = resolveLocal(k, node.inputs[0]);
        const float *scale = resolveLocal(k, node.inputs[1]);
        const float *bias = resolveLocal(k, node.inputs[2]);
        float *out = alloc(os.numElements());
        blockedBatchNorm(x, scale,
                         shapeOf(node.inputs[1]).numElements(), bias,
                         shapeOf(node.inputs[2]).numElements(), out,
                         os.dim(0), os.dim(1), os.dim(2) * os.dim(3),
                         par_);
        locals_[node.output] = {out, true};
        return;
      }
      case OpKind::Softmax: {
        const float *x = resolveLocal(k, node.inputs[0]);
        int axis = static_cast<int>(
            node.attrs.getInt("axis", os.rank() - 1));
        if (axis < 0)
            axis += os.rank();
        float *out = alloc(os.numElements());
        blockedSoftmax(x, out, os, axis, par_);
        locals_[node.output] = {out, true};
        return;
      }
      case OpKind::FusedAttention: {
        const Shape &qs = shapeOf(node.inputs[0]);
        const Shape &vs = shapeOf(node.inputs[2]);
        const std::int64_t batch = qs.dim(0);
        const std::int64_t n = qs.dim(1);
        const std::int64_t dk = qs.dim(2);
        const std::int64_t m = vs.dim(1);
        const std::int64_t dv = vs.dim(2);
        const float scale = static_cast<float>(
            node.attrs.getInt("scale_milli", 1000)) / 1000.0f;
        const float *q = resolveLocal(k, node.inputs[0]);
        const float *kd = resolveLocal(k, node.inputs[1]);
        const float *v = resolveLocal(k, node.inputs[2]);
        const float *bias = nullptr;
        bool bias_batched = false;
        if (node.inputs.size() > 3) {
            bias = resolveLocal(k, node.inputs[3]);
            const Shape &bsh = shapeOf(node.inputs[3]);
            bias_batched = bsh.rank() == 3 && bsh.dim(0) > 1;
        }
        float *out = alloc(os.numElements());
        if (k.streamingAttention) {
            blockedFusedAttention(q, kd, v, bias, bias_batched, scale,
                                  out, batch, n, dk, m, dv, simd_,
                                  tiles_, par_);
            ++stats_.fusedAttentionKernels;
            stats_.scoreBytesAvoided +=
                batch * n * m *
                static_cast<std::int64_t>(sizeof(float));
        } else {
            // Materializing fallback (the A/B baseline the streaming
            // kernel is measured against): full score panel, then
            // scale+bias, row softmax, and the V matmul over it.
            float *score = alloc(batch * n * m);
            blockedMatMul({q, dk, 1, n * dk, nullptr},
                          {kd, dk, 1, m * dk, nullptr},
                          {score, m, 1, n * m, nullptr}, batch, n, m,
                          dk, /*transB=*/true, simd_, tiles_, par_);
            const std::int64_t nm = n * m;
            par_.run(batch * nm, 4096,
                     [&](std::int64_t e0, std::int64_t e1) {
                         for (std::int64_t e = e0; e < e1; ++e) {
                             float s = score[e] * scale;
                             if (bias != nullptr)
                                 s += bias[bias_batched ? e : e % nm];
                             score[e] = s;
                         }
                     });
            blockedSoftmax(score, score, Shape({batch, n, m}), 2, par_);
            blockedMatMul({score, m, 1, nm, nullptr},
                          {v, dv, 1, m * dv, nullptr},
                          {out, dv, 1, n * dv, nullptr}, batch, n, dv,
                          m, /*transB=*/false, simd_, tiles_, par_);
            pool_.release(score);
        }
        locals_[node.output] = {out, true};
        return;
      }
      case OpKind::Relu:
      case OpKind::Gelu:
      case OpKind::Silu:
      case OpKind::Sigmoid:
      case OpKind::Tanh:
      case OpKind::Exp:
      case OpKind::Sqrt:
      case OpKind::Neg:
      case OpKind::Identity:
      case OpKind::Scale: {
        const float *x = resolveLocal(k, node.inputs[0]);
        float *out = alloc(os.numElements());
        blockedUnary(node.kind, node, x, out, os.numElements(), par_);
        locals_[node.output] = {out, true};
        return;
      }
      case OpKind::Add:
      case OpKind::Sub:
      case OpKind::Mul:
      case OpKind::Div: {
        const float *a = resolveLocal(k, node.inputs[0]);
        const float *b = resolveLocal(k, node.inputs[1]);
        float *out = alloc(os.numElements());
        blockedBinary(node.kind, a, b, out, os,
                      shapeOf(node.inputs[0]), shapeOf(node.inputs[1]),
                      par_);
        locals_[node.output] = {out, true};
        return;
      }
      case OpKind::Reshape:
      case OpKind::Transpose:
      case OpKind::DepthToSpace:
      case OpKind::SpaceToDepth:
      case OpKind::Slice:
      case OpKind::Gather: {
        // Surviving transformation: one pass through its index map
        // (the same machinery eliminated chains use).
        const float *x = resolveLocal(k, node.inputs[0]);
        const Shape &xs = shapeOf(node.inputs[0]);
        index::IndexMap map =
            index::IndexMap::fromNode(graph_, node).simplified();
        float *out = alloc(os.numElements());
        materializeMapped(map, x, Layout::rowMajor(xs.rank()), xs, out,
                          par_);
        locals_[node.output] = {out, true};
        return;
      }
      case OpKind::Concat: {
        // Block copies per input along the concat axis.
        const int axis =
            static_cast<int>(node.attrs.getInt("axis"));
        std::int64_t inner = 1;
        for (int d = axis + 1; d < os.rank(); ++d)
            inner *= os.dim(d);
        const std::int64_t outer =
            os.numElements() / (os.dim(axis) * inner);
        float *out = alloc(os.numElements());
        std::int64_t axis_off = 0;
        for (ValueId vin : node.inputs) {
            const float *x = resolveLocal(k, vin);
            const std::int64_t ext = shapeOf(vin).dim(axis);
            const std::int64_t row = ext * inner;
            for (std::int64_t o = 0; o < outer; ++o) {
                std::memcpy(out + (o * os.dim(axis) + axis_off) * inner,
                            x + o * row,
                            static_cast<std::size_t>(row) *
                                sizeof(float));
            }
            axis_off += ext;
        }
        locals_[node.output] = {out, true};
        return;
      }
      default:
        evalViaReference(k, node);
        return;
    }
}

void
PlanRunner::evalViaReference(const Kernel &k, const Node &node)
{
    std::vector<Tensor> held;
    held.reserve(node.inputs.size());
    std::vector<const Tensor *> in_ptrs;
    for (ValueId vin : node.inputs) {
        const float *p = resolveLocal(k, vin);
        Tensor t(shapeOf(vin));
        std::memcpy(t.data(), p,
                    static_cast<std::size_t>(t.numElements()) *
                        sizeof(float));
        held.push_back(std::move(t));
    }
    for (const Tensor &t : held)
        in_ptrs.push_back(&t);
    Tensor out = evalNode(graph_, node, in_ptrs);
    float *buf = alloc(out.numElements());
    std::memcpy(buf, out.data(),
                static_cast<std::size_t>(out.numElements()) *
                    sizeof(float));
    locals_[node.output] = {buf, true};
}

void
PlanRunner::runComputeKernel(const Kernel &k)
{
    locals_.clear();
    kinBySubstitute_.clear();
    for (const KernelInput &in : k.inputs)
        kinBySubstitute_[in.substitute] = &in;

    std::size_t i = 0;
    while (i < k.fusedNodes.size()) {
        const Node &node = graph_.node(k.fusedNodes[i]);
        evalNodeBlocked(k, node);
        ValueId cur = node.output;

        // Fold the following element-wise chain into one in-place
        // epilogue pass over the anchor's output.
        std::vector<EpilogueStep> steps;
        std::size_t j = i + 1;
        while (j < k.fusedNodes.size()) {
            const Node &next = graph_.node(k.fusedNodes[j]);
            EpilogueStep step;
            if (!tryFoldEpilogue(k, cur, next, &step))
                break;
            steps.push_back(step);
            cur = next.output;
            ++j;
        }
        if (!steps.empty()) {
            LocalBuf buf = locals_[node.output];
            SM_ASSERT(buf.owned, "epilogue over a borrowed buffer");
            auto *data = const_cast<float *>(buf.data);
            const std::int64_t n = shapeOf(node.output).numElements();
            par_.run(n, 4096, [&](std::int64_t e0, std::int64_t e1) {
                for (std::int64_t e = e0; e < e1; ++e) {
                    float v = data[e];
                    for (const EpilogueStep &s : steps) {
                        if (s.other) {
                            const float o = s.other[e % s.otherModulo];
                            v = s.reversed
                                    ? applyBinaryScalar(s.kind, o, v)
                                    : applyBinaryScalar(s.kind, v, o);
                        } else if (s.selfOperand) {
                            v = applyBinaryScalar(s.kind, v, v);
                        } else {
                            v = applyUnaryScalar(s.kind, v, *s.node);
                        }
                    }
                    data[e] = v;
                }
            });
            stats_.fusedEpilogueOps +=
                static_cast<int>(steps.size());
            locals_.erase(node.output);
            locals_[cur] = buf;
        }
        i = j;
    }

    publishOutput(k);

    // Return per-kernel scratch to the pool.
    auto out_it = env_.find({k.output, k.copyIndex});
    const float *published =
        out_it != env_.end() ? out_it->second.data : nullptr;
    for (auto &[v, buf] : locals_) {
        if (buf.owned && buf.data != published)
            pool_.release(const_cast<float *>(buf.data));
    }
    locals_.clear();
}

void
PlanRunner::publishOutput(const Kernel &k)
{
    auto it = locals_.find(k.output);
    SM_ASSERT(it != locals_.end(),
              "kernel did not produce its output: " + k.name);
    const Shape &shape = shapeOf(k.output);
    if (it->second.inOutLayout) {
        // Anchor op already wrote the kernel's chosen layout.
        SM_ASSERT(it->second.owned,
                  "native-layout store over a borrowed buffer");
        env_[{k.output, k.copyIndex}] = {it->second.data, true,
                                         k.outLayout};
        return;
    }
    if (isRowMajorLayout(k.outLayout) && it->second.owned) {
        env_[{k.output, k.copyIndex}] = {it->second.data, true,
                                         k.outLayout};
        return;
    }
    float *dst = alloc(k.outLayout.storageElements(shape));
    relayoutCopy(shape, it->second.data, Layout::rowMajor(shape.rank()),
                 dst, k.outLayout, par_);
    if (!isRowMajorLayout(k.outLayout))
        stats_.bytesRelayouted +=
            shape.numElements() *
            static_cast<std::int64_t>(sizeof(float));
    env_[{k.output, k.copyIndex}] = {dst, true, k.outLayout};
}

void
PlanRunner::releaseDead(std::size_t kernel_idx)
{
    for (auto it = env_.begin(); it != env_.end();) {
        auto lu = lastUse_.find(it->first);
        const std::size_t last =
            lu == lastUse_.end() ? kernel_idx : lu->second;
        if (last <= kernel_idx) {
            if (it->second.owned)
                pool_.release(const_cast<float *>(it->second.data));
            it = env_.erase(it);
        } else {
            ++it;
        }
    }
}

std::vector<Tensor>
PlanRunner::run(CpuBackendStats *stats_out)
{
    for (std::size_t i = 0; i < plan_.kernels.size(); ++i) {
        const Kernel &k = plan_.kernels[i];
        if (k.fusedNodes.empty()) {
            SM_ASSERT(k.isLayoutCopy,
                      "empty kernel must be a layout copy: " + k.name);
            runRelayoutKernel(k);
        } else {
            runComputeKernel(k);
        }
        ++stats_.kernelsExecuted;
        releaseDead(i);
    }

    std::vector<Tensor> out;
    out.reserve(plan_.graph.outputIds().size());
    for (ValueId id : plan_.graph.outputIds()) {
        StoredBuf s = resolveStored(id, 0);
        const Shape &shape = shapeOf(id);
        Tensor t(shape);
        if (isRowMajorLayout(s.layout)) {
            std::memcpy(t.data(), s.data,
                        static_cast<std::size_t>(shape.numElements()) *
                            sizeof(float));
        } else {
            relayoutCopy(shape, s.data, s.layout, t.data(),
                         Layout::rowMajor(shape.rank()), par_);
        }
        out.push_back(std::move(t));
    }

    stats_.poolHighWaterBytes = pool_.highWaterBytes();
    stats_.poolReuses = pool_.reuseCount();
    stats_.simdLevel = simd_;
    stats_.tileRowTile = tiles_.rowTile;
    stats_.tileKBlock = tiles_.kBlock;
    if (stats_out)
        *stats_out = stats_;
    return out;
}

} // namespace

CpuBackend::CpuBackend(CpuBackendOptions options)
    : options_(options)
{
}

std::vector<Tensor>
CpuBackend::run(const ExecutionPlan &plan,
                const std::map<ValueId, Tensor> &inputs,
                CpuBackendStats *stats) const
{
    PlanRunner runner(plan, inputs, options_);
    return runner.run(stats);
}

} // namespace smartmem::exec
