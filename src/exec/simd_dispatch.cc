#include "exec/simd_dispatch.h"

#include <cstdlib>

#include "support/error.h"
#include "support/strings.h"

namespace smartmem::exec {
namespace {

std::string availableLevelNames() {
    std::vector<std::string> names;
    for (SimdLevel level : availableSimdLevels())
        names.push_back(simdLevelName(level));
    return joinStrings(names, ", ");
}

}  // namespace

const char *simdLevelName(SimdLevel level) {
    switch (level) {
    case SimdLevel::Scalar: return "scalar";
    case SimdLevel::Neon: return "neon";
    case SimdLevel::Avx2: return "avx2";
    case SimdLevel::Avx512: return "avx512";
    }
    return "scalar";
}

std::optional<SimdLevel> parseSimdLevel(const std::string &name) {
    if (name == "scalar") return SimdLevel::Scalar;
    if (name == "neon") return SimdLevel::Neon;
    if (name == "avx2") return SimdLevel::Avx2;
    if (name == "avx512") return SimdLevel::Avx512;
    return std::nullopt;
}

SimdLevel detectSimdLevel() {
#if SMARTMEM_SIMD_X86
    static const SimdLevel detected = [] {
        if (__builtin_cpu_supports("avx512f")) return SimdLevel::Avx512;
        if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
            return SimdLevel::Avx2;
        return SimdLevel::Scalar;
    }();
    return detected;
#elif SMARTMEM_SIMD_NEON
    // NEON is architecturally guaranteed on AArch64.
    return SimdLevel::Neon;
#else
    return SimdLevel::Scalar;
#endif
}

const std::vector<SimdLevel> &availableSimdLevels() {
    static const std::vector<SimdLevel> levels = [] {
        std::vector<SimdLevel> out{SimdLevel::Scalar};
#if SMARTMEM_SIMD_X86
        if (detectSimdLevel() >= SimdLevel::Avx2) out.push_back(SimdLevel::Avx2);
        if (detectSimdLevel() >= SimdLevel::Avx512)
            out.push_back(SimdLevel::Avx512);
#elif SMARTMEM_SIMD_NEON
        out.push_back(SimdLevel::Neon);
#endif
        return out;
    }();
    return levels;
}

SimdLevel activeSimdLevel() {
    const char *env = std::getenv("SMARTMEM_SIMD");
    if (env == nullptr || *env == '\0') return detectSimdLevel();
    const std::optional<SimdLevel> forced = parseSimdLevel(env);
    if (!forced.has_value())
        smFatal("unknown SMARTMEM_SIMD level '" + std::string(env) +
                "' (available: " + availableLevelNames() + ")");
    for (SimdLevel level : availableSimdLevels())
        if (level == *forced) return *forced;
    smFatal("SMARTMEM_SIMD=" + std::string(env) +
            " is not executable on this host (available: " +
            availableLevelNames() + ")");
}

}  // namespace smartmem::exec
