/**
 * @file
 * Functional reference executor: computes real float results for a
 * Graph.  Naive implementations, correctness first.  Constants are
 * synthesized deterministically from the value id (or taken from a
 * "data" attribute for integer tables such as Gather indices).
 */
#ifndef SMARTMEM_EXEC_EXECUTOR_H
#define SMARTMEM_EXEC_EXECUTOR_H

#include <map>
#include <vector>

#include "exec/tensor.h"
#include "ir/graph.h"

namespace smartmem::exec {

/** Executes graphs with real float math. */
class Executor
{
  public:
    /** @param seed  Seed for synthesized constant contents. */
    explicit Executor(std::uint64_t seed = 1234) : seed_(seed) {}

    /**
     * Run the whole graph on the given model inputs (keyed by input
     * value id).  Returns every value's tensor (indexable by ValueId).
     */
    std::map<ir::ValueId, Tensor>
    run(const ir::Graph &graph,
        const std::map<ir::ValueId, Tensor> &inputs) const;

    /** Run and return just the graph outputs, in declaration order. */
    std::vector<Tensor>
    runOutputs(const ir::Graph &graph,
               const std::map<ir::ValueId, Tensor> &inputs) const;

    /** Synthesize the deterministic constant tensor for a value. */
    Tensor synthesizeConstant(const ir::Graph &graph,
                              ir::ValueId id) const;

    /** Deterministic random input tensor (for tests/examples). */
    Tensor randomTensor(const ir::Shape &shape, std::uint64_t salt) const;

  private:
    std::uint64_t seed_;
};

/**
 * Execute a single node given resolved input tensors.  Exposed so the
 * runtime's FunctionalRunner can execute fused kernels op-by-op.
 */
Tensor evalNode(const ir::Graph &graph, const ir::Node &node,
                const std::vector<const Tensor *> &inputs);

/**
 * Deterministic input tensors for every graph input (salted 100+i by
 * position) -- the one seeding convention shared by the parity tests,
 * the CI `--check` gate, and `smartmem_cli run --verify`, so all
 * three agree on what execution they compare.
 */
std::map<ir::ValueId, Tensor> makeSeededInputs(const ir::Graph &graph,
                                               const Executor &ex);

/**
 * Worst relative difference over output pairs:
 * max_i ( maxAbsDiff(ref[i], got[i]) / max|ref[i]| ).  The backend
 * parity tolerance (1e-4, docs/EXECUTION.md) is checked against this.
 */
float maxRelDiff(const std::vector<Tensor> &ref,
                 const std::vector<Tensor> &got);

} // namespace smartmem::exec

#endif // SMARTMEM_EXEC_EXECUTOR_H
