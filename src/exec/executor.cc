#include "exec/executor.h"

#include <cmath>

#include "support/error.h"
#include "support/rng.h"

namespace smartmem::exec {

float
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    SM_REQUIRE(a.shape() == b.shape(), "maxAbsDiff shape mismatch");
    float mx = 0;
    for (std::int64_t i = 0; i < a.numElements(); ++i)
        mx = std::max(mx, std::fabs(a.at(i) - b.at(i)));
    return mx;
}

std::map<ir::ValueId, Tensor>
makeSeededInputs(const ir::Graph &graph, const Executor &ex)
{
    std::map<ir::ValueId, Tensor> inputs;
    for (std::size_t i = 0; i < graph.inputIds().size(); ++i) {
        const ir::ValueId id = graph.inputIds()[i];
        inputs[id] = ex.randomTensor(graph.value(id).shape, 100 + i);
    }
    return inputs;
}

float
maxRelDiff(const std::vector<Tensor> &ref, const std::vector<Tensor> &got)
{
    SM_REQUIRE(ref.size() == got.size(),
               "maxRelDiff output count mismatch");
    float worst = 0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        float mx = 0;
        for (std::int64_t e = 0; e < ref[i].numElements(); ++e)
            mx = std::max(mx, std::fabs(ref[i].at(e)));
        worst = std::max(worst,
                         maxAbsDiff(ref[i], got[i]) / (mx + 1e-30f));
    }
    return worst;
}

Tensor
Executor::randomTensor(const ir::Shape &shape, std::uint64_t salt) const
{
    Rng rng(seed_ * 0x9e3779b97f4a7c15ULL + salt + 1);
    Tensor t(shape);
    for (std::int64_t i = 0; i < t.numElements(); ++i)
        t.at(i) = static_cast<float>(rng.uniformReal(-1.0, 1.0));
    return t;
}

Tensor
Executor::synthesizeConstant(const ir::Graph &graph, ir::ValueId id) const
{
    const ir::Value &v = graph.value(id);
    const ir::Node &n = graph.node(v.producer);
    SM_ASSERT(n.kind == ir::OpKind::Constant,
              "synthesizeConstant on non-constant");
    if (n.attrs.has("data")) {
        const auto &data = n.attrs.getInts("data");
        SM_REQUIRE(static_cast<std::int64_t>(data.size()) ==
                   v.shape.numElements(),
                   "constant data size mismatch");
        Tensor t(v.shape);
        for (std::size_t i = 0; i < data.size(); ++i)
            t.at(static_cast<std::int64_t>(i)) =
                static_cast<float>(data[i]);
        return t;
    }

    // Graph rewrites renumber values, so rewritten constants carry
    // their original stream id in a "salt" attr; fresh graphs fall
    // back to the value id, which keeps historical streams intact.
    const std::uint64_t salt = static_cast<std::uint64_t>(
        n.attrs.getInt("salt", id));
    // Small magnitudes keep deep compositions numerically stable.
    auto fill = [this](float *dst, std::int64_t count,
                       std::uint64_t stream) {
        Rng rng(seed_ + stream * 7919 + 17);
        for (std::int64_t i = 0; i < count; ++i)
            dst[i] = static_cast<float>(rng.uniformReal(-0.25, 0.25));
    };

    if (n.attrs.has("fold_gather_idx")) {
        // Constant-folded Gather: element i is table[idx[i]] of the
        // source table's stream, so folding is seed-invariant.
        const auto &idx = n.attrs.getInts("fold_gather_idx");
        const std::int64_t count = n.attrs.getInt("fold_gather_count");
        SM_REQUIRE(static_cast<std::int64_t>(idx.size()) ==
                   v.shape.numElements(),
                   "fold_gather_idx size mismatch");
        Tensor table(ir::Shape({count}));
        fill(table.data(), count, salt);
        Tensor t(v.shape);
        for (std::size_t i = 0; i < idx.size(); ++i) {
            SM_REQUIRE(idx[i] >= 0 && idx[i] < count,
                       "fold_gather_idx out of range");
            t.at(static_cast<std::int64_t>(i)) = table.at(idx[i]);
        }
        return t;
    }

    Tensor t(v.shape);
    fill(t.data(), t.numElements(), salt);
    if (n.attrs.has("bnfold_scale_salt")) {
        // Conv+BatchNorm folding: weight output-channel o is scaled by
        // the BN scale's stream value g[o % count], the same per-channel
        // factor evalBatchNorm would have applied to the conv output.
        const std::int64_t count = n.attrs.getInt("bnfold_scale_count");
        Tensor g(ir::Shape({count}));
        fill(g.data(), count,
             static_cast<std::uint64_t>(
                 n.attrs.getInt("bnfold_scale_salt")));
        const std::int64_t oc = v.shape.dim(0);
        const std::int64_t inner = t.numElements() / oc;
        for (std::int64_t o = 0; o < oc; ++o)
            for (std::int64_t i = 0; i < inner; ++i)
                t.at(o * inner + i) *= g.at(o % count);
    }
    return t;
}

std::map<ir::ValueId, Tensor>
Executor::run(const ir::Graph &graph,
              const std::map<ir::ValueId, Tensor> &inputs) const
{
    std::map<ir::ValueId, Tensor> env;
    for (ir::NodeId nid : graph.topoOrder()) {
        const ir::Node &node = graph.node(nid);
        switch (node.kind) {
          case ir::OpKind::Input: {
            auto it = inputs.find(node.output);
            SM_REQUIRE(it != inputs.end(),
                       "missing model input: " + node.name);
            SM_REQUIRE(it->second.shape() ==
                       graph.value(node.output).shape,
                       "input shape mismatch: " + node.name);
            env[node.output] = it->second;
            break;
          }
          case ir::OpKind::Constant:
            env[node.output] = synthesizeConstant(graph, node.output);
            break;
          default: {
            std::vector<const Tensor *> in_ptrs;
            for (ir::ValueId in : node.inputs) {
                auto it = env.find(in);
                SM_ASSERT(it != env.end(), "input not yet computed");
                in_ptrs.push_back(&it->second);
            }
            env[node.output] = evalNode(graph, node, in_ptrs);
            break;
          }
        }
    }
    return env;
}

std::vector<Tensor>
Executor::runOutputs(const ir::Graph &graph,
                     const std::map<ir::ValueId, Tensor> &inputs) const
{
    auto env = run(graph, inputs);
    std::vector<Tensor> out;
    for (ir::ValueId id : graph.outputIds()) {
        auto it = env.find(id);
        SM_ASSERT(it != env.end(), "graph output was not computed");
        out.push_back(it->second);
    }
    return out;
}

} // namespace smartmem::exec
