/**
 * @file
 * Runtime CPU-feature dispatch for the blocked execution kernels.
 *
 * The blocked backend ships one portable scalar inner loop (the
 * always-correct fallback) plus explicit vector micro-kernels for the
 * instruction sets a host may expose.  Which one runs is decided at
 * *runtime*, never at configure time: a single binary built on any
 * x86-64 toolchain carries the AVX2 and AVX-512 paths (as
 * target-attributed functions) and picks the widest one the CPU
 * reports via CPUID; an AArch64 build carries the NEON path.
 *
 * For testing and attribution the choice can be forced with the
 * `SMARTMEM_SIMD` environment variable (`avx512`, `avx2`, `neon` or
 * `scalar`).  Requesting a level the host cannot execute is a hard
 * error, not a silent downgrade -- a CI job that forces `avx2` must
 * never accidentally validate the scalar path.
 */
#ifndef SMARTMEM_EXEC_SIMD_DISPATCH_H
#define SMARTMEM_EXEC_SIMD_DISPATCH_H

#include <optional>
#include <string>
#include <vector>

/// Compile-time availability of the vector paths.  The x86 kernels use
/// GCC/Clang `target` attributes so they compile without global -mavx*
/// flags; MSVC has no equivalent, so an MSVC build is scalar-only.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(_MSC_VER)
#define SMARTMEM_SIMD_X86 1
#else
#define SMARTMEM_SIMD_X86 0
#endif

#if defined(__aarch64__) || defined(__ARM_NEON)
#define SMARTMEM_SIMD_NEON 1
#else
#define SMARTMEM_SIMD_NEON 0
#endif

namespace smartmem::exec {

/** Vector instruction sets the blocked kernels dispatch over, in
 *  ascending width order.  Scalar is always executable. */
enum class SimdLevel {
    Scalar = 0,  ///< portable blocked loop (any host)
    Neon = 1,    ///< 128-bit AArch64 NEON
    Avx2 = 2,    ///< 256-bit AVX2 + FMA
    Avx512 = 3,  ///< 512-bit AVX-512F
};

/** Lower-case name as accepted by SMARTMEM_SIMD ("avx2", ...). */
const char *simdLevelName(SimdLevel level);

/** Parse a SMARTMEM_SIMD value; nullopt for unknown names. */
std::optional<SimdLevel> parseSimdLevel(const std::string &name);

/** Levels this binary+host can actually execute, widest last.
 *  Always contains Scalar. */
const std::vector<SimdLevel> &availableSimdLevels();

/** Widest level the host CPU supports (cached CPUID probe). */
SimdLevel detectSimdLevel();

/**
 * The level the blocked kernels should use *now*: the SMARTMEM_SIMD
 * override when set (re-read on every call so tests can flip it
 * between runs), otherwise detectSimdLevel().  An unknown name or a
 * level the host cannot execute raises FatalError listing the
 * available levels.
 */
SimdLevel activeSimdLevel();

}  // namespace smartmem::exec

#endif  // SMARTMEM_EXEC_SIMD_DISPATCH_H
