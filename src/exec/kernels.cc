/**
 * @file
 * Naive per-operator kernels for the functional executor.
 *
 * Data-movement operators (Reshape, Transpose, DepthToSpace,
 * SpaceToDepth, Slice, Gather-with-constant-indices) are implemented by
 * materializing the operator's IndexMap; the index module's own tests
 * validate the maps against independent references, so the executor and
 * the elimination pass share one proven definition of these semantics.
 */
#include <algorithm>
#include <cmath>

#include "exec/executor.h"
#include "index/index_map.h"
#include "support/error.h"

namespace smartmem::exec {

using ir::Node;
using ir::OpKind;
using ir::Shape;

namespace {

float
applyUnary(OpKind kind, float x, const Node &node)
{
    switch (kind) {
      case OpKind::Relu:    return x > 0 ? x : 0;
      case OpKind::Gelu:
        return 0.5f * x * (1.0f + std::tanh(0.7978845608f *
                                            (x + 0.044715f * x * x * x)));
      case OpKind::Silu:    return x / (1.0f + std::exp(-x));
      case OpKind::Sigmoid: return 1.0f / (1.0f + std::exp(-x));
      case OpKind::Tanh:    return std::tanh(x);
      case OpKind::Exp:     return std::exp(x);
      case OpKind::Sqrt:    return std::sqrt(std::max(x, 0.0f));
      case OpKind::Neg:     return -x;
      case OpKind::Identity: return x;
      case OpKind::Scale: {
        float s = static_cast<float>(
            node.attrs.getInt("scale_milli", 1000)) / 1000.0f;
        return x * s;
      }
      default:
        smPanic("applyUnary on non-unary kind");
    }
}

float
applyBinary(OpKind kind, float a, float b)
{
    switch (kind) {
      case OpKind::Add: return a + b;
      case OpKind::Sub: return a - b;
      case OpKind::Mul: return a * b;
      case OpKind::Div: return a / b;
      default:
        smPanic("applyBinary on non-binary kind");
    }
}

Tensor
evalConv(const ir::Graph &graph, const Node &node,
         const Tensor &x, const Tensor &w, const Tensor *bias)
{
    const Shape &xs = x.shape();
    const Shape &ws = w.shape();
    std::int64_t stride = node.attrs.getInt("stride", 1);
    std::int64_t pad = node.attrs.getInt("pad", 0);
    std::int64_t groups = node.attrs.getInt(
        "groups", node.kind == OpKind::DepthwiseConv2d ? xs.dim(1) : 1);

    Shape out_shape = graph.value(node.output).shape;
    Tensor out(out_shape);
    const std::int64_t n_batch = out_shape.dim(0);
    const std::int64_t oc = out_shape.dim(1);
    const std::int64_t oh = out_shape.dim(2);
    const std::int64_t ow = out_shape.dim(3);
    const std::int64_t icg = ws.dim(1); // in-channels per group
    const std::int64_t kh = ws.dim(2);
    const std::int64_t kw = ws.dim(3);
    const std::int64_t ocg = oc / groups; // out-channels per group

    for (std::int64_t n = 0; n < n_batch; ++n) {
        for (std::int64_t o = 0; o < oc; ++o) {
            std::int64_t g = o / ocg;
            // Optional per-output-channel bias (conv+batchnorm folding),
            // added after accumulation like the BN affine it replaces.
            const float bias_v =
                bias ? bias->at(o % bias->numElements()) : 0.0f;
            for (std::int64_t y = 0; y < oh; ++y) {
                for (std::int64_t xo = 0; xo < ow; ++xo) {
                    float acc = 0;
                    for (std::int64_t c = 0; c < icg; ++c) {
                        std::int64_t ic = g * icg + c;
                        for (std::int64_t dy = 0; dy < kh; ++dy) {
                            std::int64_t iy = y * stride + dy - pad;
                            if (iy < 0 || iy >= xs.dim(2))
                                continue;
                            for (std::int64_t dx = 0; dx < kw; ++dx) {
                                std::int64_t ix = xo * stride + dx - pad;
                                if (ix < 0 || ix >= xs.dim(3))
                                    continue;
                                acc += x.at({n, ic, iy, ix}) *
                                       w.at({o, c, dy, dx});
                            }
                        }
                    }
                    out.at({n, o, y, xo}) = acc + bias_v;
                }
            }
        }
    }
    return out;
}

Tensor
evalMatMul(const ir::Graph &graph, const Node &node,
           const Tensor &a, const Tensor &b)
{
    const Shape &as = a.shape();
    const Shape &bs = b.shape();
    bool trans_b = node.attrs.getInt("transB", 0) != 0;
    Shape out_shape = graph.value(node.output).shape;
    Tensor out(out_shape);

    const std::int64_t m = as.dim(as.rank() - 2);
    const std::int64_t k = as.dim(as.rank() - 1);
    const std::int64_t n = out_shape.dim(out_shape.rank() - 1);
    std::int64_t batch = 1;
    for (int i = 0; i < out_shape.rank() - 2; ++i)
        batch *= out_shape.dim(i);
    const bool b_batched = bs.rank() > 2;

    for (std::int64_t bi = 0; bi < batch; ++bi) {
        const float *ap = a.data() + bi * m * k;
        const float *bp = b.data() + (b_batched
            ? bi * k * n : 0);
        float *op = out.data() + bi * m * n;
        for (std::int64_t i = 0; i < m; ++i) {
            for (std::int64_t j = 0; j < n; ++j) {
                float acc = 0;
                for (std::int64_t kk = 0; kk < k; ++kk) {
                    float bv = trans_b ? bp[j * k + kk] : bp[kk * n + j];
                    acc += ap[i * k + kk] * bv;
                }
                op[i * n + j] = acc;
            }
        }
    }
    return out;
}

Tensor
evalLayerNorm(const Node &node, const Tensor &x, const Tensor *gamma,
              const Tensor *beta)
{
    (void)node;
    // Normalize over the last dimension.
    const Shape &s = x.shape();
    const std::int64_t inner = s.dim(s.rank() - 1);
    const std::int64_t outer = s.numElements() / inner;
    Tensor out(s);
    for (std::int64_t o = 0; o < outer; ++o) {
        const float *xp = x.data() + o * inner;
        float *op = out.data() + o * inner;
        float sum = 0;
        for (std::int64_t i = 0; i < inner; ++i)
            sum += xp[i];
        float mean = sum / static_cast<float>(inner);
        float var = 0;
        for (std::int64_t i = 0; i < inner; ++i)
            var += (xp[i] - mean) * (xp[i] - mean);
        var /= static_cast<float>(inner);
        float inv = 1.0f / std::sqrt(var + 1e-5f);
        for (std::int64_t i = 0; i < inner; ++i) {
            float v = (xp[i] - mean) * inv;
            if (gamma)
                v *= gamma->at(i % gamma->numElements());
            if (beta)
                v += beta->at(i % beta->numElements());
            op[i] = v;
        }
    }
    return out;
}

Tensor
evalInstanceNorm(const Tensor &x)
{
    // Normalize over H, W per (N, C).
    const Shape &s = x.shape();
    SM_REQUIRE(s.rank() == 4, "instance norm expects rank-4");
    const std::int64_t hw = s.dim(2) * s.dim(3);
    const std::int64_t nc = s.dim(0) * s.dim(1);
    Tensor out(s);
    for (std::int64_t o = 0; o < nc; ++o) {
        const float *xp = x.data() + o * hw;
        float *op = out.data() + o * hw;
        float sum = 0;
        for (std::int64_t i = 0; i < hw; ++i)
            sum += xp[i];
        float mean = sum / static_cast<float>(hw);
        float var = 0;
        for (std::int64_t i = 0; i < hw; ++i)
            var += (xp[i] - mean) * (xp[i] - mean);
        var /= static_cast<float>(hw);
        float inv = 1.0f / std::sqrt(var + 1e-5f);
        for (std::int64_t i = 0; i < hw; ++i)
            op[i] = (xp[i] - mean) * inv;
    }
    return out;
}

Tensor
evalBatchNorm(const Tensor &x, const Tensor &scale, const Tensor &bias)
{
    // Inference-mode affine transform per channel (folded stats).
    const Shape &s = x.shape();
    SM_REQUIRE(s.rank() == 4, "batch norm expects rank-4");
    Tensor out(s);
    const std::int64_t c_extent = s.dim(1);
    const std::int64_t hw = s.dim(2) * s.dim(3);
    for (std::int64_t n = 0; n < s.dim(0); ++n) {
        for (std::int64_t c = 0; c < c_extent; ++c) {
            float g = scale.at(c % scale.numElements());
            float b = bias.at(c % bias.numElements());
            const float *xp = x.data() + (n * c_extent + c) * hw;
            float *op = out.data() + (n * c_extent + c) * hw;
            for (std::int64_t i = 0; i < hw; ++i)
                op[i] = xp[i] * g + b;
        }
    }
    return out;
}

Tensor
evalSoftmax(const Node &node, const Tensor &x)
{
    const Shape &s = x.shape();
    int axis = static_cast<int>(node.attrs.getInt("axis", s.rank() - 1));
    if (axis < 0)
        axis += s.rank();
    SM_REQUIRE(axis >= 0 && axis < s.rank(), "softmax axis out of range");
    std::int64_t inner = 1;
    for (int i = axis + 1; i < s.rank(); ++i)
        inner *= s.dim(i);
    std::int64_t extent = s.dim(axis);
    std::int64_t outer = s.numElements() / (inner * extent);

    Tensor out(s);
    for (std::int64_t o = 0; o < outer; ++o) {
        for (std::int64_t i = 0; i < inner; ++i) {
            const float *xp = x.data() + o * extent * inner + i;
            float *op = out.data() + o * extent * inner + i;
            float mx = -1e30f;
            for (std::int64_t e = 0; e < extent; ++e)
                mx = std::max(mx, xp[e * inner]);
            float denom = 0;
            for (std::int64_t e = 0; e < extent; ++e)
                denom += std::exp(xp[e * inner] - mx);
            for (std::int64_t e = 0; e < extent; ++e)
                op[e * inner] = std::exp(xp[e * inner] - mx) / denom;
        }
    }
    return out;
}

Tensor
evalReduce(const ir::Graph &graph, const Node &node, const Tensor &x)
{
    const Shape &s = x.shape();
    Shape out_shape = graph.value(node.output).shape;
    const auto &axes = node.attrs.getInts("axes");
    std::vector<bool> reduced(static_cast<std::size_t>(s.rank()), false);
    for (auto a : axes)
        reduced[static_cast<std::size_t>(a)] = true;
    bool keepdims = node.attrs.getInt("keepdims", 1) != 0;

    Tensor out(out_shape);
    bool is_max = node.kind == OpKind::ReduceMax;
    if (is_max) {
        for (std::int64_t i = 0; i < out.numElements(); ++i)
            out.at(i) = -1e30f;
    }
    std::int64_t reduce_count = 1;
    for (auto a : axes)
        reduce_count *= s.dim(static_cast<int>(a));

    forEachCoord(s, [&](const std::vector<std::int64_t> &coord) {
        std::vector<std::int64_t> ocoord;
        for (int d = 0; d < s.rank(); ++d) {
            if (reduced[static_cast<std::size_t>(d)]) {
                if (keepdims)
                    ocoord.push_back(0);
            } else {
                ocoord.push_back(coord[static_cast<std::size_t>(d)]);
            }
        }
        if (ocoord.empty())
            ocoord.push_back(0);
        float v = x.at(coord);
        float &dst = out.at(ocoord);
        if (is_max)
            dst = std::max(dst, v);
        else
            dst += v;
    });
    if (node.kind == OpKind::ReduceMean) {
        for (std::int64_t i = 0; i < out.numElements(); ++i)
            out.at(i) /= static_cast<float>(reduce_count);
    }
    return out;
}

Tensor
evalPool(const ir::Graph &graph, const Node &node, const Tensor &x)
{
    const Shape &s = x.shape();
    Shape out_shape = graph.value(node.output).shape;
    Tensor out(out_shape);
    bool is_max = node.kind == OpKind::MaxPool2d;
    std::int64_t kernel, stride, pad;
    if (node.kind == OpKind::GlobalAvgPool) {
        kernel = s.dim(2);
        stride = 1;
        pad = 0;
        SM_REQUIRE(s.dim(2) == s.dim(3) || true, "global pool");
        // Global pool: average over all H, W.
        for (std::int64_t n = 0; n < s.dim(0); ++n) {
            for (std::int64_t c = 0; c < s.dim(1); ++c) {
                float acc = 0;
                for (std::int64_t y = 0; y < s.dim(2); ++y)
                    for (std::int64_t xx = 0; xx < s.dim(3); ++xx)
                        acc += x.at({n, c, y, xx});
                out.at({n, c, 0, 0}) =
                    acc / static_cast<float>(s.dim(2) * s.dim(3));
            }
        }
        return out;
    }
    kernel = node.attrs.getInt("kernel");
    stride = node.attrs.getInt("stride", kernel);
    pad = node.attrs.getInt("pad", 0);
    for (std::int64_t n = 0; n < out_shape.dim(0); ++n) {
        for (std::int64_t c = 0; c < out_shape.dim(1); ++c) {
            for (std::int64_t y = 0; y < out_shape.dim(2); ++y) {
                for (std::int64_t xo = 0; xo < out_shape.dim(3); ++xo) {
                    float acc = is_max ? -1e30f : 0.0f;
                    std::int64_t cnt = 0;
                    for (std::int64_t dy = 0; dy < kernel; ++dy) {
                        std::int64_t iy = y * stride + dy - pad;
                        if (iy < 0 || iy >= s.dim(2))
                            continue;
                        for (std::int64_t dx = 0; dx < kernel; ++dx) {
                            std::int64_t ix = xo * stride + dx - pad;
                            if (ix < 0 || ix >= s.dim(3))
                                continue;
                            float v = x.at({n, c, iy, ix});
                            if (is_max)
                                acc = std::max(acc, v);
                            else
                                acc += v;
                            ++cnt;
                        }
                    }
                    out.at({n, c, y, xo}) = is_max
                        ? acc
                        : acc / static_cast<float>(std::max<std::int64_t>(
                              cnt, 1));
                }
            }
        }
    }
    return out;
}

Tensor
evalFusedAttention(const ir::Graph &graph, const Node &node,
                   const Tensor &q, const Tensor &k, const Tensor &v,
                   const Tensor *bias)
{
    const Shape &qs = q.shape();
    const Shape &vs = v.shape();
    const std::int64_t batch = qs.dim(0);
    const std::int64_t n = qs.dim(1);
    const std::int64_t dk = qs.dim(2);
    const std::int64_t m = vs.dim(1);
    const std::int64_t dv = vs.dim(2);
    const float scale = static_cast<float>(
        node.attrs.getInt("scale_milli", 1000)) / 1000.0f;
    const bool bias_batched =
        bias != nullptr && bias->shape().rank() == 3 &&
        bias->shape().dim(0) > 1;

    Tensor out(graph.value(node.output).shape);
    std::vector<float> row(static_cast<std::size_t>(m));
    for (std::int64_t b = 0; b < batch; ++b) {
        const float *qp = q.data() + b * n * dk;
        const float *kp = k.data() + b * m * dk;
        const float *vp = v.data() + b * m * dv;
        const float *bp =
            bias ? bias->data() + (bias_batched ? b * n * m : 0)
                 : nullptr;
        float *op = out.data() + b * n * dv;
        for (std::int64_t i = 0; i < n; ++i) {
            float mx = -1e30f;
            for (std::int64_t j = 0; j < m; ++j) {
                float acc = 0;
                for (std::int64_t kk = 0; kk < dk; ++kk)
                    acc += qp[i * dk + kk] * kp[j * dk + kk];
                acc *= scale;
                if (bp)
                    acc += bp[i * m + j];
                row[static_cast<std::size_t>(j)] = acc;
                mx = std::max(mx, acc);
            }
            float denom = 0;
            for (std::int64_t j = 0; j < m; ++j) {
                float e = std::exp(row[static_cast<std::size_t>(j)] - mx);
                row[static_cast<std::size_t>(j)] = e;
                denom += e;
            }
            for (std::int64_t d = 0; d < dv; ++d)
                op[i * dv + d] = 0;
            for (std::int64_t j = 0; j < m; ++j) {
                float p = row[static_cast<std::size_t>(j)] / denom;
                for (std::int64_t d = 0; d < dv; ++d)
                    op[i * dv + d] += p * vp[j * dv + d];
            }
        }
    }
    return out;
}

/** Materialize a data-movement op via its IndexMap. */
Tensor
evalViaIndexMap(const ir::Graph &graph, const Node &node, const Tensor &x)
{
    index::IndexMap map =
        index::IndexMap::fromNode(graph, node).simplified();
    Tensor out(map.outputShape());
    forEachCoord(map.outputShape(),
                 [&](const std::vector<std::int64_t> &coord) {
        out.at(coord) = x.at(map.apply(coord));
    });
    return out;
}

Tensor
evalConcat(const ir::Graph &graph, const Node &node,
           const std::vector<const Tensor *> &inputs)
{
    Shape out_shape = graph.value(node.output).shape;
    int axis = static_cast<int>(node.attrs.getInt("axis"));
    Tensor out(out_shape);
    std::int64_t offset = 0;
    for (const Tensor *t : inputs) {
        forEachCoord(t->shape(),
                     [&](const std::vector<std::int64_t> &coord) {
            std::vector<std::int64_t> ocoord = coord;
            ocoord[static_cast<std::size_t>(axis)] += offset;
            out.at(ocoord) = t->at(coord);
        });
        offset += t->shape().dim(axis);
    }
    return out;
}

Tensor
evalPad(const ir::Graph &graph, const Node &node, const Tensor &x)
{
    Shape out_shape = graph.value(node.output).shape;
    const auto &pads = node.attrs.getInts("pads");
    Tensor out(out_shape); // zero-filled
    forEachCoord(x.shape(), [&](const std::vector<std::int64_t> &coord) {
        std::vector<std::int64_t> ocoord = coord;
        for (int d = 0; d < x.shape().rank(); ++d)
            ocoord[static_cast<std::size_t>(d)] +=
                pads[static_cast<std::size_t>(2 * d)];
        out.at(ocoord) = x.at(coord);
    });
    return out;
}

Tensor
evalBroadcastBinary(const ir::Graph &graph, const Node &node,
                    const Tensor &a, const Tensor &b)
{
    Shape out_shape = graph.value(node.output).shape;
    Tensor out(out_shape);
    forEachCoord(out_shape, [&](const std::vector<std::int64_t> &coord) {
        // Map output coordinate onto each (possibly lower-rank) input.
        auto pick = [&](const Tensor &t) {
            const Shape &s = t.shape();
            std::vector<std::int64_t> c(
                static_cast<std::size_t>(s.rank()));
            for (int d = 0; d < s.rank(); ++d) {
                std::int64_t oc = coord[static_cast<std::size_t>(
                    d + out_shape.rank() - s.rank())];
                c[static_cast<std::size_t>(d)] =
                    s.dim(d) == 1 ? 0 : oc;
            }
            return t.at(c);
        };
        out.at(coord) = applyBinary(node.kind, pick(a), pick(b));
    });
    return out;
}

} // namespace

Tensor
evalNode(const ir::Graph &graph, const Node &node,
         const std::vector<const Tensor *> &inputs)
{
    switch (node.kind) {
      case OpKind::Input:
      case OpKind::Constant:
        smPanic("evalNode on terminal");

      case OpKind::Conv2d:
      case OpKind::GroupConv2d:
      case OpKind::DepthwiseConv2d:
        return evalConv(graph, node, *inputs[0], *inputs[1],
                        inputs.size() > 2 ? inputs[2] : nullptr);

      case OpKind::MatMul:
      case OpKind::BatchMatMul:
        return evalMatMul(graph, node, *inputs[0], *inputs[1]);

      case OpKind::LayerNorm:
        return evalLayerNorm(node, *inputs[0],
                             inputs.size() > 1 ? inputs[1] : nullptr,
                             inputs.size() > 2 ? inputs[2] : nullptr);
      case OpKind::InstanceNorm:
        return evalInstanceNorm(*inputs[0]);
      case OpKind::BatchNorm:
        return evalBatchNorm(*inputs[0], *inputs[1], *inputs[2]);

      case OpKind::Softmax:
        return evalSoftmax(node, *inputs[0]);

      case OpKind::ReduceSum:
      case OpKind::ReduceMean:
      case OpKind::ReduceMax:
        return evalReduce(graph, node, *inputs[0]);

      case OpKind::MaxPool2d:
      case OpKind::AvgPool2d:
      case OpKind::GlobalAvgPool:
        return evalPool(graph, node, *inputs[0]);

      case OpKind::Relu:
      case OpKind::Gelu:
      case OpKind::Silu:
      case OpKind::Sigmoid:
      case OpKind::Tanh:
      case OpKind::Exp:
      case OpKind::Sqrt:
      case OpKind::Neg:
      case OpKind::Identity:
      case OpKind::Scale: {
        Tensor out(inputs[0]->shape());
        for (std::int64_t i = 0; i < out.numElements(); ++i)
            out.at(i) = applyUnary(node.kind, inputs[0]->at(i), node);
        return out;
      }

      case OpKind::Add:
      case OpKind::Sub:
      case OpKind::Mul:
      case OpKind::Div:
        return evalBroadcastBinary(graph, node, *inputs[0], *inputs[1]);

      case OpKind::Reshape:
      case OpKind::Transpose:
      case OpKind::DepthToSpace:
      case OpKind::SpaceToDepth:
      case OpKind::Slice:
        return evalViaIndexMap(graph, node, *inputs[0]);

      case OpKind::Gather:
        return evalViaIndexMap(graph, node, *inputs[0]);

      case OpKind::Concat:
        return evalConcat(graph, node, inputs);

      case OpKind::Pad:
        return evalPad(graph, node, *inputs[0]);

      case OpKind::FusedAttention:
        return evalFusedAttention(graph, node, *inputs[0], *inputs[1],
                                  *inputs[2],
                                  inputs.size() > 3 ? inputs[3] : nullptr);
    }
    smPanic("unhandled op kind in evalNode");
}

} // namespace smartmem::exec
