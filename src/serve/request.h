/**
 * @file
 * Request/response types for the inference serving layer.
 *
 * A request names what to run -- (model | @graph-file, device,
 * compiler, stage) resolved against the existing registries -- and
 * what to run it on: either explicit input tensors or a deterministic
 * input salt (the serving twin of exec::makeSeededInputs, so a served
 * response can always be re-checked against a direct execution).
 *
 * Every submitted request gets exactly one response with a typed
 * terminal status; the server never drops a request silently
 * (docs/SERVING.md).
 */
#ifndef SMARTMEM_SERVE_REQUEST_H
#define SMARTMEM_SERVE_REQUEST_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exec/tensor.h"
#include "ir/graph.h"

namespace smartmem::serve {

/** Terminal status of one served request. */
enum class ResponseStatus
{
    Ok,           ///< executed; outputs populated
    Rejected,     ///< admission queue full (backpressure)
    ShuttingDown, ///< server stopped before the request could run
    Failed,       ///< routing/compile/execution error (see error)
};

/** Lowercase display name ("ok", "rejected", ...). */
const char *responseStatusName(ResponseStatus s);

/** One inference request. */
struct InferenceRequest
{
    /** Zoo/registry model name, or "@<path>" for a `.smgraph` file
     *  (the serving twin of the CLI's --graph-file). */
    std::string model;

    /** Target device registry name; "" = the server's default. */
    std::string device;

    /** Compiler registry name. */
    std::string compiler = "smartmem";

    /** Staged-pipeline selector (-1 = full pipeline, 0..3 =
     *  compileStage presets), as in core::CompileOptions. */
    int stage = -1;

    /** Salt for deterministic input synthesis when `inputs` is empty;
     *  salt 0 reproduces exec::makeSeededInputs exactly. */
    std::uint64_t inputSalt = 0;

    /** Explicit inputs in graph-input declaration order; empty =
     *  synthesize from (server seed, inputSalt). */
    std::vector<exec::Tensor> inputs;
};

/** One response; exactly one per submitted request. */
struct InferenceResponse
{
    ResponseStatus status = ResponseStatus::Failed;

    /** Diagnostic for non-Ok statuses (registry catalogs for unknown
     *  names, the exception message for execution failures). */
    std::string error;

    /** Executed batch size (1 = ran alone, k >= 2 = coalesced with
     *  k-1 other requests); 0 when the request never executed. */
    int batchSize = 0;

    /** Milliseconds from admission to execution start. */
    double queueMs = 0;
    /** Milliseconds of plan execution (shared by a coalesced batch). */
    double execMs = 0;
    /** Milliseconds from admission to response completion. */
    double totalMs = 0;

    /** Graph outputs in declaration order (batch-1 shapes: a coalesced
     *  execution is sliced back into per-request outputs). */
    std::vector<exec::Tensor> outputs;

    bool ok() const { return status == ResponseStatus::Ok; }
};

/**
 * Deterministic per-request input tensors for every graph input,
 * keyed by input value id: input i is salted `salt * 1000 + 100 + i`.
 * Salt 0 is exactly exec::makeSeededInputs' convention (100 + i), so
 * verification harnesses can reproduce any served request's inputs
 * from (seed, salt) alone.
 */
std::map<ir::ValueId, exec::Tensor>
makeRequestInputs(const ir::Graph &graph, std::uint64_t seed,
                  std::uint64_t salt);

} // namespace smartmem::serve

#endif // SMARTMEM_SERVE_REQUEST_H
