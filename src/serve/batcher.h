/**
 * @file
 * Bounded admission queue with same-key batch coalescing.
 *
 * The queue is the single handoff point between submitters and server
 * workers.  Admission is bounded (push() fails when full -- the
 * server turns that into a typed Rejected response, never a silent
 * drop).  Workers pop *batches*: popBatch() takes the FIFO head, then
 * gathers queued requests with the same BatchKey -- (model, device
 * fingerprint, compiler, stage) -- until the batch reaches maxBatch
 * or the head request's age reaches the batch deadline.  The deadline
 * is anchored at the head's admission time, so a request never waits
 * more than deadlineMs for co-batching on top of its queue time, and
 * a deadline of 0 disables coalescing waits entirely.
 *
 * Multiple workers can sit in popBatch() concurrently; each pops a
 * disjoint set of requests, so distinct keys batch in parallel.
 */
#ifndef SMARTMEM_SERVE_BATCHER_H
#define SMARTMEM_SERVE_BATCHER_H

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "serve/request.h"

namespace smartmem::serve {

/** Requests coalesce into one executed batch iff their keys match. */
struct BatchKey
{
    std::string model;
    std::string deviceFingerprint;
    std::string compiler;
    int stage = -1;

    bool operator==(const BatchKey &o) const
    {
        return model == o.model &&
               deviceFingerprint == o.deviceFingerprint &&
               compiler == o.compiler && stage == o.stage;
    }
    bool operator!=(const BatchKey &o) const { return !(*this == o); }
};

/** One admitted request waiting for (or undergoing) execution. */
struct QueuedRequest
{
    InferenceRequest request;
    BatchKey key;
    std::chrono::steady_clock::time_point enqueueTime;
    std::promise<InferenceResponse> promise;
};

/** Bounded FIFO queue with coalescing pop (see file header). */
class AdmissionQueue
{
  public:
    explicit AdmissionQueue(std::size_t capacity);

    /** Admit a request; false when the queue is at capacity or
     *  closed (the caller owns the rejection response). */
    bool push(QueuedRequest &&q);

    /**
     * Pop the next batch: the FIFO head plus up to maxBatch-1 queued
     * same-key requests, waiting until the head's age reaches
     * deadlineMs for more to arrive (maxBatch reached earlier cuts
     * the wait short; close() cuts every wait short).  Blocks while
     * the queue is empty and open.  Returns an empty vector exactly
     * once the queue is closed and fully drained.
     */
    std::vector<QueuedRequest> popBatch(int maxBatch,
                                        double deadlineMs);

    /** Stop admission; workers drain what is queued, then popBatch
     *  returns empty. */
    void close();

    /** Stop admission and return everything still queued (no-drain
     *  shutdown: the server answers these ShuttingDown). */
    std::vector<QueuedRequest> closeAndFlush();

    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }
    bool closed() const;

  private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<QueuedRequest> queue_;
    bool closed_ = false;
};

} // namespace smartmem::serve

#endif // SMARTMEM_SERVE_BATCHER_H
