#include "serve/server.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "device/device_registry.h"
#include "exec/kernels_blocked.h"
#include "runtime/plan_executor.h"
#include "support/error.h"

namespace smartmem::serve {

namespace {

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

std::string
batchKeyFingerprint(const BatchKey &key)
{
    return key.model + "|" + key.deviceFingerprint + "|" +
           key.compiler + "|stage=" + std::to_string(key.stage);
}

/** Fulfill a request's promise; a no-op if this request was already
 *  answered (or moved out), so batch-level failure sweeps are safe
 *  after partial success. */
void
respond(QueuedRequest &q, InferenceResponse &&r)
{
    try {
        q.promise.set_value(std::move(r));
    } catch (const std::future_error &) {
        // already satisfied / moved-from: someone answered first
    }
}

/** Per-request element count of each listed value in the batch-1
 *  graph, in declaration order. */
std::vector<std::int64_t>
elementCounts(const ir::Graph &graph,
              const std::vector<ir::ValueId> &ids)
{
    std::vector<std::int64_t> counts;
    counts.reserve(ids.size());
    for (ir::ValueId id : ids)
        counts.push_back(graph.value(id).shape.numElements());
    return counts;
}

/**
 * Whether a batch-k plan is a stacking of k batch-1 plans: same
 * input/output arity, and every input/output shape is the batch-1
 * shape with dim 0 scaled by k (tensors are row-major with batch
 * outermost, so request b occupies the contiguous slice
 * [b*n1, (b+1)*n1) of each stacked buffer).
 */
bool
stacksAlongBatch(const ir::Graph &g1, const ir::Graph &gk, int k)
{
    auto scaled = [k](const ir::Shape &s1, const ir::Shape &sk) {
        if (s1.rank() != sk.rank() || s1.rank() == 0)
            return false;
        if (sk.dim(0) != static_cast<std::int64_t>(k) * s1.dim(0))
            return false;
        for (int d = 1; d < s1.rank(); ++d)
            if (s1.dim(d) != sk.dim(d))
                return false;
        return true;
    };
    if (g1.inputIds().size() != gk.inputIds().size() ||
        g1.outputIds().size() != gk.outputIds().size())
        return false;
    for (std::size_t i = 0; i < g1.inputIds().size(); ++i)
        if (!scaled(g1.value(g1.inputIds()[i]).shape,
                    gk.value(gk.inputIds()[i]).shape))
            return false;
    for (std::size_t i = 0; i < g1.outputIds().size(); ++i)
        if (!scaled(g1.value(g1.outputIds()[i]).shape,
                    gk.value(gk.outputIds()[i]).shape))
            return false;
    return true;
}

} // namespace

InferenceServer::InferenceServer(ServerOptions options)
    : options_(std::move(options)),
      queue_(options_.queueCapacity)
{
    options_.workers = std::max(options_.workers, 1);
    options_.maxBatch = std::max(options_.maxBatch, 1);
    if (options_.autoStart)
        start();
}

InferenceServer::~InferenceServer()
{
    shutdown(true);
}

const models::ModelRegistry &
InferenceServer::models() const
{
    return options_.models ? *options_.models
                           : models::ModelRegistry::builtins();
}

const core::CompilerRegistry &
InferenceServer::compilers() const
{
    return options_.compilers ? *options_.compilers
                              : core::CompilerRegistry::builtins();
}

const device::DeviceProfile &
InferenceServer::resolveDevice(const std::string &name) const
{
    for (const auto &dev : options_.extraDevices)
        if (dev.name == name)
            return dev;
    return device::DeviceRegistry::builtins().find(name);
}

const models::GraphSource &
InferenceServer::sourceFor(const std::string &model)
{
    if (model.empty() || model[0] != '@')
        return models().find(model);
    const std::string path = model.substr(1);
    SM_REQUIRE(!path.empty(),
               "empty graph-file path (expected @<path>.smgraph)");
    std::lock_guard<std::mutex> lock(mu_);
    auto it = graphFiles_.find(path);
    if (it == graphFiles_.end()) {
        it = graphFiles_
                 .emplace(path,
                          std::make_unique<models::FileGraphSource>(
                              models::loadGraphFile(path)))
                 .first;
    }
    return *it->second;
}

core::CompileSession &
InferenceServer::sessionFor(const std::string &deviceFp)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(deviceFp);
    if (it == sessions_.end()) {
        auto dev = devicesByFp_.find(deviceFp);
        SM_ASSERT(dev != devicesByFp_.end(),
                  "no profile recorded for device fingerprint");
        // Serial sessions: the server's workers are the parallelism;
        // concurrent compiles of one key are single-flight anyway.
        it = sessions_
                 .emplace(deviceFp, std::make_unique<core::CompileSession>(
                                        dev->second, 1))
                 .first;
    }
    return *it->second;
}

core::CompileStats
InferenceServer::compileStats(const std::string &deviceName) const
{
    const std::string fp = resolveDevice(deviceName).fingerprint();
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(fp);
    return it == sessions_.end() ? core::CompileStats()
                                 : it->second->stats();
}

std::future<InferenceResponse>
InferenceServer::submit(InferenceRequest request)
{
    std::promise<InferenceResponse> promise;
    std::future<InferenceResponse> future = promise.get_future();
    const auto now = std::chrono::steady_clock::now();

    auto finish = [&](ResponseStatus status, std::string error) {
        InferenceResponse r;
        r.status = status;
        r.error = std::move(error);
        promise.set_value(std::move(r));
        return std::move(future);
    };

    stats_.onSubmitted(request.model, queue_.size());

    // Fail fast on routing: unknown names answer with the registry's
    // catalog-listing FatalError message instead of dying in a worker.
    QueuedRequest q;
    try {
        SM_REQUIRE(request.stage >= -1 && request.stage <= 3,
                   "stage must be -1..3, got " +
                       std::to_string(request.stage));
        const std::string deviceName = request.device.empty()
            ? options_.defaultDevice
            : request.device;
        const device::DeviceProfile &dev = resolveDevice(deviceName);
        compilers().find(request.compiler);
        sourceFor(request.model); // throws on unknown model/bad file
        q.key = BatchKey{request.model, dev.fingerprint(),
                         request.compiler, request.stage};
        std::lock_guard<std::mutex> lock(mu_);
        devicesByFp_.emplace(q.key.deviceFingerprint, dev);
    } catch (const std::exception &e) {
        stats_.onFailed(request.model);
        return finish(ResponseStatus::Failed, e.what());
    }

    const std::string model = request.model;
    q.request = std::move(request);
    q.enqueueTime = now;
    q.promise = std::move(promise);
    // `promise` was moved into q, so a failed push answers through
    // q.promise (push leaves q intact when it returns false).
    if (!queue_.push(std::move(q))) {
        InferenceResponse r;
        if (queue_.closed()) {
            stats_.onShutDown(model);
            r.status = ResponseStatus::ShuttingDown;
            r.error = "server is shutting down";
        } else {
            stats_.onRejected(model);
            r.status = ResponseStatus::Rejected;
            r.error = "admission queue full (" +
                      std::to_string(queue_.capacity()) +
                      " requests); retry later";
        }
        q.promise.set_value(std::move(r));
    }
    return future;
}

void
InferenceServer::start()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (started_ || stopped_)
        return;
    started_ = true;
    pool_ = std::make_unique<support::ThreadPool>(options_.workers);
    workerDone_.reserve(static_cast<std::size_t>(options_.workers));
    for (int i = 0; i < options_.workers; ++i)
        workerDone_.push_back(pool_->submit([this] { workerLoop(); }));
}

void
InferenceServer::shutdown(bool drain)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopped_)
            return;
        stopped_ = true;
    }
    if (drain) {
        queue_.close();
    } else {
        for (QueuedRequest &q : queue_.closeAndFlush()) {
            stats_.onShutDown(q.request.model);
            InferenceResponse r;
            r.status = ResponseStatus::ShuttingDown;
            r.error = "server shut down before execution";
            r.totalMs = msSince(q.enqueueTime);
            q.promise.set_value(std::move(r));
        }
    }
    for (auto &f : workerDone_)
        f.get(); // worker loops never throw; rethrow if one did
    workerDone_.clear();
    pool_.reset();
}

void
InferenceServer::workerLoop()
{
    const int maxBatch = options_.coalesce ? options_.maxBatch : 1;
    const double deadline =
        options_.coalesce ? options_.batchDeadlineMs : 0.0;
    for (;;) {
        std::vector<QueuedRequest> batch =
            queue_.popBatch(maxBatch, deadline);
        if (batch.empty())
            return; // closed and drained
        execute(std::move(batch));
    }
}

std::map<ir::ValueId, exec::Tensor>
InferenceServer::inputsFor(const InferenceRequest &request,
                           const ir::Graph &graph1) const
{
    if (request.inputs.empty())
        return makeRequestInputs(graph1, options_.seed,
                                 request.inputSalt);
    const auto &ids = graph1.inputIds();
    SM_REQUIRE(request.inputs.size() == ids.size(),
               "request carries " +
                   std::to_string(request.inputs.size()) +
                   " inputs, graph declares " +
                   std::to_string(ids.size()));
    std::map<ir::ValueId, exec::Tensor> inputs;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const ir::Shape &want = graph1.value(ids[i]).shape;
        const ir::Shape &got = request.inputs[i].shape();
        SM_REQUIRE(got == want,
                   "input " + std::to_string(i) + " shape " +
                       got.toString() + " does not match declared " +
                       want.toString());
        inputs[ids[i]] = request.inputs[i];
    }
    return inputs;
}

void
InferenceServer::executeSingles(std::vector<QueuedRequest> &batch,
                                const runtime::ExecutionPlan &plan1,
                                const device::DeviceProfile &dev)
{
    const std::string &model = batch.front().request.model;
    std::unique_ptr<runtime::PlanExecutor> executor;
    try {
        runtime::ExecutorOptions eo;
        eo.threads = options_.executorThreads;
        eo.seed = options_.seed;
        const exec::TileParams tiles = exec::resolveTileParams(dev);
        eo.gemmRowTile = tiles.rowTile;
        eo.gemmKBlock = tiles.kBlock;
        executor = runtime::makeExecutor(options_.backend, eo);
    } catch (const std::exception &e) {
        for (QueuedRequest &q : batch) {
            stats_.onFailed(model);
            InferenceResponse r;
            r.status = ResponseStatus::Failed;
            r.error = e.what();
            r.totalMs = msSince(q.enqueueTime);
            respond(q, std::move(r));
        }
        return;
    }
    for (QueuedRequest &q : batch) {
        try {
            auto inputs = inputsFor(q.request, plan1.graph);
            const double queueMs = msSince(q.enqueueTime);
            const auto execStart = std::chrono::steady_clock::now();
            auto outputs = executor->run(plan1, inputs);
            InferenceResponse r;
            r.status = ResponseStatus::Ok;
            r.batchSize = 1;
            r.queueMs = queueMs;
            r.execMs = msSince(execStart);
            r.outputs = std::move(outputs);
            r.totalMs = msSince(q.enqueueTime);
            stats_.onBatchExecuted(model, 1);
            stats_.onServed(model, 1, r.totalMs, r.queueMs);
            respond(q, std::move(r));
        } catch (const std::exception &e) {
            stats_.onFailed(model);
            InferenceResponse r;
            r.status = ResponseStatus::Failed;
            r.error = e.what();
            r.totalMs = msSince(q.enqueueTime);
            respond(q, std::move(r));
        }
    }
}

void
InferenceServer::execute(std::vector<QueuedRequest> batch)
{
    const BatchKey key = batch.front().key;
    const std::string &model = key.model;

    auto failAll = [&](const std::string &error) {
        // respond() skips requests already answered (or moved into
        // the survivors vector), so this sweep is safe on any
        // exception path.
        for (QueuedRequest &q : batch) {
            InferenceResponse r;
            r.status = ResponseStatus::Failed;
            r.error = error;
            r.totalMs = msSince(q.enqueueTime);
            try {
                q.promise.set_value(std::move(r));
            } catch (const std::future_error &) {
                continue; // already answered elsewhere
            }
            stats_.onFailed(model);
        }
    };

    try {
        const core::Compiler &compiler = compilers().find(key.compiler);
        core::CompileSession &session =
            sessionFor(key.deviceFingerprint);
        const models::GraphSource &source = sourceFor(model);
        device::DeviceProfile dev;
        {
            std::lock_guard<std::mutex> lock(mu_);
            dev = devicesByFp_.at(key.deviceFingerprint);
        }

        core::CompileOptions o1;
        o1.batch = 1;
        o1.stage = key.stage;
        core::CompilerResult r1 =
            compiler.compileSource(session, source, o1);
        if (!r1.supported) {
            failAll("compiler '" + key.compiler + "' does not support " +
                    model + ": " + r1.reason);
            return;
        }
        const runtime::ExecutionPlan &plan1 = *r1.plan;

        const int k = static_cast<int>(batch.size());
        std::shared_ptr<const runtime::ExecutionPlan> plank;
        if (k > 1) {
            const std::string memoKey = batchKeyFingerprint(key);
            bool tryBatch = true;
            {
                std::lock_guard<std::mutex> lock(mu_);
                auto memo = batchable_.find(memoKey);
                if (memo != batchable_.end())
                    tryBatch = memo->second;
            }
            if (tryBatch) {
                bool ok = false;
                try {
                    core::CompileOptions ok_ = o1;
                    ok_.batch = k;
                    core::CompilerResult rk =
                        compiler.compileSource(session, source, ok_);
                    if (rk.supported &&
                        stacksAlongBatch(plan1.graph, rk.plan->graph,
                                         k)) {
                        plank = rk.plan;
                        ok = true;
                    }
                } catch (const FatalError &) {
                    // Fixed-batch source (e.g. a .smgraph file):
                    // remember and serve the group individually.
                }
                if (!ok) {
                    std::lock_guard<std::mutex> lock(mu_);
                    batchable_.emplace(memoKey, false);
                }
            }
        }

        if (!plank) {
            executeSingles(batch, plan1, dev);
            return;
        }

        // Coalesced path: validate every request's inputs against the
        // batch-1 graph first.  Invalid ones are answered Failed in
        // place; if any fall out, the batch-k plan no longer matches
        // the group size, so the survivors run individually rather
        // than re-planning mid-batch.
        std::vector<std::map<ir::ValueId, exec::Tensor>> perRequest(
            batch.size());
        std::vector<char> valid(batch.size(), 1);
        bool allValid = true;
        for (std::size_t b = 0; b < batch.size(); ++b) {
            try {
                perRequest[b] =
                    inputsFor(batch[b].request, plan1.graph);
            } catch (const std::exception &e) {
                valid[b] = 0;
                allValid = false;
                stats_.onFailed(model);
                InferenceResponse r;
                r.status = ResponseStatus::Failed;
                r.error = e.what();
                r.totalMs = msSince(batch[b].enqueueTime);
                respond(batch[b], std::move(r));
            }
        }
        if (!allValid) {
            std::vector<QueuedRequest> rest;
            for (std::size_t b = 0; b < batch.size(); ++b)
                if (valid[b])
                    rest.push_back(std::move(batch[b]));
            if (!rest.empty())
                executeSingles(rest, plan1, dev);
            return;
        }

        // Stack per-request inputs along dim 0, execute the batch-k
        // plan once, slice the outputs back.
        const auto &ids1 = plan1.graph.inputIds();
        const auto &idsk = plank->graph.inputIds();
        const auto inCounts = elementCounts(plan1.graph, ids1);
        std::map<ir::ValueId, exec::Tensor> stacked;
        for (std::size_t j = 0; j < idsk.size(); ++j) {
            exec::Tensor t(plank->graph.value(idsk[j]).shape);
            for (std::size_t b = 0; b < batch.size(); ++b) {
                const exec::Tensor &part = perRequest[b].at(ids1[j]);
                std::memcpy(t.data() +
                                static_cast<std::size_t>(
                                    inCounts[j]) * b,
                            part.data(),
                            static_cast<std::size_t>(inCounts[j]) *
                                sizeof(float));
            }
            stacked[idsk[j]] = std::move(t);
        }

        runtime::ExecutorOptions eo;
        eo.threads = options_.executorThreads;
        eo.seed = options_.seed;
        const exec::TileParams tiles = exec::resolveTileParams(dev);
        eo.gemmRowTile = tiles.rowTile;
        eo.gemmKBlock = tiles.kBlock;
        auto executor = runtime::makeExecutor(options_.backend, eo);

        std::vector<double> queueMs;
        queueMs.reserve(batch.size());
        for (const QueuedRequest &q : batch)
            queueMs.push_back(msSince(q.enqueueTime));
        const auto execStart = std::chrono::steady_clock::now();
        std::vector<exec::Tensor> outputs =
            executor->run(*plank, stacked);
        const double execMs = msSince(execStart);
        stats_.onBatchExecuted(model, k);

        const auto &outs1 = plan1.graph.outputIds();
        const auto outCounts = elementCounts(plan1.graph, outs1);
        for (std::size_t b = 0; b < batch.size(); ++b) {
            InferenceResponse r;
            r.status = ResponseStatus::Ok;
            r.batchSize = k;
            r.queueMs = queueMs[b];
            r.execMs = execMs;
            r.outputs.reserve(outs1.size());
            for (std::size_t j = 0; j < outs1.size(); ++j) {
                exec::Tensor t(plan1.graph.value(outs1[j]).shape);
                std::memcpy(t.data(),
                            outputs[j].data() +
                                static_cast<std::size_t>(
                                    outCounts[j]) * b,
                            static_cast<std::size_t>(outCounts[j]) *
                                sizeof(float));
                r.outputs.push_back(std::move(t));
            }
            r.totalMs = msSince(batch[b].enqueueTime);
            stats_.onServed(model, k, r.totalMs, r.queueMs);
            respond(batch[b], std::move(r));
        }
    } catch (const std::exception &e) {
        failAll(e.what());
    }
}

} // namespace smartmem::serve
