/**
 * @file
 * Per-model and global serving statistics.
 *
 * Counters follow the request lifecycle: every submitted request ends
 * in exactly one of served/rejected/failed/shutDown, so
 *
 *   submitted == served + rejected + failed + shutDown
 *
 * holds in every quiescent snapshot.  Latency distributions are
 * LatencyRecorders (support/stats.h) over milliseconds; the batch
 * histogram maps executed batch size -> number of executions.
 *
 * ServerStats is internally synchronized (one mutex; the hot path is
 * a handful of counter bumps per batch), so server workers record
 * concurrently and readers take consistent snapshots.
 */
#ifndef SMARTMEM_SERVE_SERVE_STATS_H
#define SMARTMEM_SERVE_SERVE_STATS_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "support/stats.h"

namespace smartmem::serve {

/** Counter/latency block kept globally and per model name. */
struct StatsBlock
{
    std::int64_t submitted = 0;
    std::int64_t served = 0;
    std::int64_t rejected = 0;
    std::int64_t failed = 0;
    std::int64_t shutDown = 0;

    /** Requests served in a batch of >= 2 (subset of served). */
    std::int64_t coalesced = 0;

    /** Plan executions (one per batch, coalesced or not). */
    std::int64_t batches = 0;

    /** Executed batch size -> execution count. */
    std::map<int, std::int64_t> batchHistogram;

    /** Admission-to-completion latency of served requests, ms. */
    LatencyRecorder totalLatency;
    /** Admission-to-execution-start latency of served requests, ms. */
    LatencyRecorder queueLatency;

    /** Mean executed batch size (served / batches); 0 with no
     *  batches. */
    double meanBatchSize() const;
};

/** A consistent copy of the counters at one instant. */
struct StatsSnapshot
{
    StatsBlock global;
    std::map<std::string, StatsBlock> perModel;

    /** Largest admission-queue depth observed at submit time. */
    std::size_t queueHighWater = 0;
};

/** Thread-safe recorder; one per InferenceServer. */
class ServerStats
{
  public:
    void onSubmitted(const std::string &model, std::size_t queueDepth);
    void onRejected(const std::string &model);
    void onShutDown(const std::string &model);
    void onFailed(const std::string &model);

    /** One plan execution of `batchSize` coalesced requests. */
    void onBatchExecuted(const std::string &model, int batchSize);

    /** One request completed Ok inside a batch of `batchSize`. */
    void onServed(const std::string &model, int batchSize,
                  double totalMs, double queueMs);

    StatsSnapshot snapshot() const;

  private:
    mutable std::mutex mu_;
    StatsSnapshot s_;
};

} // namespace smartmem::serve

#endif // SMARTMEM_SERVE_SERVE_STATS_H
