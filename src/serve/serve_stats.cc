#include "serve/serve_stats.h"

namespace smartmem::serve {

double
StatsBlock::meanBatchSize() const
{
    if (batches == 0)
        return 0.0;
    return static_cast<double>(served) / static_cast<double>(batches);
}

void
ServerStats::onSubmitted(const std::string &model,
                         std::size_t queueDepth)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++s_.global.submitted;
    ++s_.perModel[model].submitted;
    if (queueDepth > s_.queueHighWater)
        s_.queueHighWater = queueDepth;
}

void
ServerStats::onRejected(const std::string &model)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++s_.global.rejected;
    ++s_.perModel[model].rejected;
}

void
ServerStats::onShutDown(const std::string &model)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++s_.global.shutDown;
    ++s_.perModel[model].shutDown;
}

void
ServerStats::onFailed(const std::string &model)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++s_.global.failed;
    ++s_.perModel[model].failed;
}

void
ServerStats::onBatchExecuted(const std::string &model, int batchSize)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++s_.global.batches;
    ++s_.global.batchHistogram[batchSize];
    StatsBlock &m = s_.perModel[model];
    ++m.batches;
    ++m.batchHistogram[batchSize];
}

void
ServerStats::onServed(const std::string &model, int batchSize,
                      double totalMs, double queueMs)
{
    std::lock_guard<std::mutex> lock(mu_);
    StatsBlock &m = s_.perModel[model];
    for (StatsBlock *b : {&s_.global, &m}) {
        ++b->served;
        if (batchSize >= 2)
            ++b->coalesced;
        b->totalLatency.record(totalMs);
        b->queueLatency.record(queueMs);
    }
}

StatsSnapshot
ServerStats::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return s_;
}

} // namespace smartmem::serve
