/**
 * @file
 * InferenceServer: the multi-tenant request/response serving layer.
 *
 * Architecture (docs/SERVING.md):
 *
 *   submit() ──> AdmissionQueue (bounded) ──> worker threads
 *                                             (support::ThreadPool)
 *                                               │ popBatch():
 *                                               │ same-(model, device,
 *                                               │ compiler, stage)
 *                                               │ coalescing
 *                                               ▼
 *                                  CompileSession plan caches
 *                                  (per device, batch-k re-planning)
 *                                               │
 *                                               ▼
 *                                  runtime::makeExecutor backend
 *
 * submit() never blocks: it validates routing against the existing
 * registries (unknown names answer Failed with the catalog-listing
 * FatalError message), then either admits the request or answers
 * Rejected when the bounded queue is full (backpressure) -- every
 * request gets exactly one typed response, never a silent drop.
 *
 * Workers coalesce same-key requests up to maxBatch / batchDeadlineMs
 * (see AdmissionQueue), compile a batch-k plan through the per-device
 * CompileSession -- so re-planning per coalesced batch size is a plan
 * cache hit after the first occurrence, and concurrent first
 * occurrences are single-flight -- stack the requests' inputs along
 * the batch dimension, execute once, and slice the outputs back into
 * per-request responses.  Sources that cannot rebuild at batch k
 * (fixed-batch `.smgraph` files) or whose shapes do not stack fall
 * back to per-request batch-1 execution of the same group.
 */
#ifndef SMARTMEM_SERVE_SERVER_H
#define SMARTMEM_SERVE_SERVER_H

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/compile_session.h"
#include "core/compiler_registry.h"
#include "device/device_profile.h"
#include "models/model_registry.h"
#include "serve/batcher.h"
#include "serve/request.h"
#include "serve/serve_stats.h"
#include "support/thread_pool.h"

namespace smartmem::serve {

/** Serving configuration; every knob has a usable default. */
struct ServerOptions
{
    /** Device for requests that leave `device` empty. */
    std::string defaultDevice = "adreno740";

    /** File-loaded profiles resolvable by DeviceProfile::name before
     *  the built-in registry is consulted (CLI --device-file). */
    std::vector<device::DeviceProfile> extraDevices;

    /** Worker threads draining the admission queue. */
    int workers = 2;

    /** Admission queue bound; a full queue rejects (backpressure). */
    std::size_t queueCapacity = 256;

    /** Largest coalesced batch (1 disables coalescing). */
    int maxBatch = 8;

    /** How long the batch head waits for same-key company, ms
     *  (0 disables coalescing waits). */
    double batchDeadlineMs = 2.0;

    /** Master switch for coalescing (false forces batch size 1 with
     *  no deadline waits, for A/B comparison). */
    bool coalesce = true;

    /** Execution backend registry name (runtime::makeExecutor). */
    std::string backend = "cpu-blocked";

    /** Threads per plan execution; workers are the serving
     *  parallelism, so per-execution threading defaults to 1. */
    int executorThreads = 1;

    /** Seed for synthesized constants and salted request inputs;
     *  verification must execute with the same seed. */
    std::uint64_t seed = 1234;

    /** Spawn workers in the constructor; false = call start()
     *  explicitly (tests pre-load the queue, then start). */
    bool autoStart = true;

    /** Model catalog; null = ModelRegistry::builtins().  Must outlive
     *  the server. */
    const models::ModelRegistry *models = nullptr;

    /** Compiler catalog; null = CompilerRegistry::builtins().  Must
     *  outlive the server. */
    const core::CompilerRegistry *compilers = nullptr;
};

/** Multi-tenant inference server (see file header). */
class InferenceServer
{
  public:
    explicit InferenceServer(ServerOptions options = ServerOptions());

    /** Equivalent to shutdown(true): drains admitted requests. */
    ~InferenceServer();

    InferenceServer(const InferenceServer &) = delete;
    InferenceServer &operator=(const InferenceServer &) = delete;

    /**
     * Submit one request; never blocks.  The future always becomes
     * ready with exactly one response: Ok after execution, Rejected
     * on a full admission queue, ShuttingDown when the server stopped
     * first, Failed on routing/compile/execution errors.
     */
    std::future<InferenceResponse> submit(InferenceRequest request);

    /** Spawn the worker threads; idempotent.  No-op after
     *  shutdown(). */
    void start();

    /**
     * Stop the server; idempotent.  drain=true serves everything
     * already admitted before returning; drain=false answers queued
     * requests ShuttingDown (in-flight batches still finish).  Either
     * way every admitted request has its response by return.
     */
    void shutdown(bool drain = true);

    StatsSnapshot stats() const { return stats_.snapshot(); }

    std::size_t queueDepth() const { return queue_.size(); }

    const ServerOptions &options() const { return options_; }

    /** Resolved compile stats of the session serving `deviceName`
     *  (for tests/diagnostics); zeros if that device never compiled
     *  anything. */
    core::CompileStats
    compileStats(const std::string &deviceName) const;

  private:
    const models::ModelRegistry &models() const;
    const core::CompilerRegistry &compilers() const;

    /** extraDevices by name, then DeviceRegistry::builtins(). */
    const device::DeviceProfile &
    resolveDevice(const std::string &name) const;

    /** Registry source, or the cached FileGraphSource for an
     *  "@<path>" token (loads the file on first use). */
    const models::GraphSource &sourceFor(const std::string &model);

    core::CompileSession &sessionFor(const std::string &deviceFp);

    void workerLoop();
    void execute(std::vector<QueuedRequest> batch);
    void executeSingles(std::vector<QueuedRequest> &batch,
                        const runtime::ExecutionPlan &plan1,
                        const device::DeviceProfile &dev);

    /** Per-request input map against the batch-1 graph: explicit
     *  tensors validated against the declared inputs, or synthesized
     *  from (options.seed, request.inputSalt).  Throws FatalError on
     *  count/shape mismatches. */
    std::map<ir::ValueId, exec::Tensor>
    inputsFor(const InferenceRequest &request,
              const ir::Graph &graph1) const;

    ServerOptions options_;
    AdmissionQueue queue_;
    ServerStats stats_;

    mutable std::mutex mu_;
    bool started_ = false;
    bool stopped_ = false;
    std::unique_ptr<support::ThreadPool> pool_;
    std::vector<std::future<void>> workerDone_;
    /** Device fingerprint -> profile seen at submit (so execute()
     *  needs no registry access). */
    std::map<std::string, device::DeviceProfile> devicesByFp_;
    /** Device fingerprint -> lazily created compile session. */
    std::map<std::string, std::unique_ptr<core::CompileSession>>
        sessions_;
    /** "@<path>" -> loaded graph source. */
    std::map<std::string, std::unique_ptr<models::FileGraphSource>>
        graphFiles_;
    /** Batch-key fingerprint -> "source rebuilds and stacks at
     *  batch > 1" memo, so fixed-batch sources don't retry a failing
     *  build on every batch. */
    std::map<std::string, bool> batchable_;
};

} // namespace smartmem::serve

#endif // SMARTMEM_SERVE_SERVER_H
