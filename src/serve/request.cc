#include "serve/request.h"

#include "exec/executor.h"

namespace smartmem::serve {

const char *
responseStatusName(ResponseStatus s)
{
    switch (s) {
    case ResponseStatus::Ok:
        return "ok";
    case ResponseStatus::Rejected:
        return "rejected";
    case ResponseStatus::ShuttingDown:
        return "shutting-down";
    case ResponseStatus::Failed:
        return "failed";
    }
    return "unknown";
}

std::map<ir::ValueId, exec::Tensor>
makeRequestInputs(const ir::Graph &graph, std::uint64_t seed,
                  std::uint64_t salt)
{
    exec::Executor ex(seed);
    std::map<ir::ValueId, exec::Tensor> inputs;
    std::uint64_t base = salt * 1000 + 100;
    std::uint64_t i = 0;
    for (ir::ValueId id : graph.inputIds()) {
        inputs[id] = ex.randomTensor(graph.value(id).shape, base + i);
        ++i;
    }
    return inputs;
}

} // namespace smartmem::serve
