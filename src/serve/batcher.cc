#include "serve/batcher.h"

#include "support/error.h"

namespace smartmem::serve {

AdmissionQueue::AdmissionQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
}

bool
AdmissionQueue::push(QueuedRequest &&q)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (closed_ || queue_.size() >= capacity_)
            return false;
        queue_.push_back(std::move(q));
    }
    // All waiters: popBatch blocks on two different predicates (queue
    // non-empty, and same-key arrivals during a deadline wait).
    cv_.notify_all();
    return true;
}

std::vector<QueuedRequest>
AdmissionQueue::popBatch(int maxBatch, double deadlineMs)
{
    SM_REQUIRE(maxBatch >= 1, "popBatch requires maxBatch >= 1");
    const auto deadlineDelta =
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(
                deadlineMs > 0 ? deadlineMs : 0));

    std::vector<QueuedRequest> batch;
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty())
        return batch; // closed and drained

    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
    // By value: growing `batch` reallocates, so a reference into it
    // would dangle after the first coalesced push_back.
    const BatchKey key = batch.front().key;
    const auto deadline = batch.front().enqueueTime + deadlineDelta;

    for (;;) {
        // Gather queued same-key requests (other keys keep their FIFO
        // positions for other popBatch calls).
        for (auto it = queue_.begin();
             it != queue_.end() &&
             batch.size() < static_cast<std::size_t>(maxBatch);) {
            if (it->key == key) {
                batch.push_back(std::move(*it));
                it = queue_.erase(it);
            } else {
                ++it;
            }
        }
        if (batch.size() >= static_cast<std::size_t>(maxBatch))
            break;
        if (deadlineMs <= 0 || closed_)
            break;
        if (std::chrono::steady_clock::now() >= deadline)
            break;
        // Wait for more same-key arrivals (or close) until the head's
        // deadline; spurious wakeups just re-run the gather loop.
        cv_.wait_until(lock, deadline);
    }
    return batch;
}

void
AdmissionQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
    }
    cv_.notify_all();
}

std::vector<QueuedRequest>
AdmissionQueue::closeAndFlush()
{
    std::vector<QueuedRequest> rest;
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
        while (!queue_.empty()) {
            rest.push_back(std::move(queue_.front()));
            queue_.pop_front();
        }
    }
    cv_.notify_all();
    return rest;
}

std::size_t
AdmissionQueue::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
}

bool
AdmissionQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
}

} // namespace smartmem::serve
