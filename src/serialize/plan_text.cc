#include "serialize/plan_text.h"

#include <sstream>
#include <vector>

#include "serialize/text_reader.h"
#include "support/error.h"
#include "support/strings.h"

namespace smartmem::serialize {

std::string
serializePlan(const runtime::ExecutionPlan &plan)
{
    std::ostringstream os;
    os << "smartmem-plan v" << kPlanFormatVersion << "\n";
    os << "compiler";
    if (!plan.compilerName.empty())
        os << " " << plan.compilerName;
    os << "\n";
    os << "cachekey";
    if (!plan.cacheKey.empty())
        os << " " << plan.cacheKey;
    os << "\n";
    os << "graph " << plan.graph.nodes().size() << " "
       << plan.graph.values().size() << " "
       << graphSignature(plan.graph) << "\n";
    os << "kernels " << plan.kernels.size() << "\n";
    for (std::size_t i = 0; i < plan.kernels.size(); ++i) {
        const runtime::Kernel &k = plan.kernels[i];
        os << "kernel " << i << "\n";
        os << "name";
        if (!k.name.empty())
            os << " " << k.name;
        os << "\n";
        os << "fused " << k.fusedNodes.size();
        for (ir::NodeId n : k.fusedNodes)
            os << " " << n;
        os << "\n";
        os << "output " << k.output << " " << k.copyIndex << " "
           << (k.isLayoutCopy ? 1 : 0) << "\n";
        os << "outlayout " << k.outLayout.toString() << "\n";
        os << "efficiency " << hexDouble(k.tunedEfficiency) << "\n";
        if (k.streamingAttention)
            os << "streaming 1\n";
        os << "inputs " << k.inputs.size() << "\n";
        for (const runtime::KernelInput &in : k.inputs) {
            os << "input " << in.source << " " << in.sourceCopy << " "
               << in.substitute << " " << (in.internalSource ? 1 : 0)
               << "\n";
            os << "layout " << in.layout.toString() << "\n";
            if (in.readMap)
                os << "readmap " << in.readMap->toString() << "\n";
        }
    }
    os << "end\n";
    return os.str();
}

runtime::ExecutionPlan
parsePlan(const std::string &text, ir::Graph graph)
{
    LineReader r(text, "plan");

    const std::string header = r.next();
    if (header != "smartmem-plan v" + std::to_string(kPlanFormatVersion))
        r.fail("unsupported plan format: '" + header + "'");

    runtime::ExecutionPlan plan;
    plan.compilerName = r.restOf("compiler");
    plan.cacheKey = r.restOf("cachekey");

    const auto gf = r.fieldsOf("graph", 3);
    const auto n_nodes = static_cast<std::int64_t>(graph.nodes().size());
    const auto n_values =
        static_cast<std::int64_t>(graph.values().size());
    if (r.asInt(gf[0], 0, 1 << 30) != n_nodes ||
        r.asInt(gf[1], 0, 1 << 30) != n_values ||
        gf[2] != graphSignature(graph))
        r.fail("plan was serialized against a different graph");

    const auto n_kernels =
        r.asInt(r.fieldsOf("kernels", 1)[0], 0, 1 << 24);
    plan.kernels.reserve(static_cast<std::size_t>(n_kernels));
    for (std::int64_t i = 0; i < n_kernels; ++i) {
        if (r.asInt(r.fieldsOf("kernel", 1)[0], 0, n_kernels - 1) != i)
            r.fail("kernel records out of order");
        runtime::Kernel k;
        k.name = r.restOf("name");

        const auto fused = r.fieldsOf("fused", -1);
        if (fused.empty())
            r.fail("'fused' expects a count");
        const auto n_fused =
            r.asInt(fused[0], 0, static_cast<std::int64_t>(n_nodes));
        if (static_cast<std::int64_t>(fused.size()) != n_fused + 1)
            r.fail("'fused' count disagrees with the id list");
        for (std::int64_t j = 0; j < n_fused; ++j) {
            k.fusedNodes.push_back(static_cast<ir::NodeId>(
                r.asInt(fused[static_cast<std::size_t>(j + 1)], 0,
                        n_nodes - 1)));
        }

        const auto out = r.fieldsOf("output", 3);
        k.output =
            static_cast<ir::ValueId>(r.asInt(out[0], -1, n_values - 1));
        k.copyIndex = static_cast<int>(r.asInt(out[1], 0, 1 << 20));
        k.isLayoutCopy = r.asBool(out[2]);
        k.outLayout = ir::Layout::parse(r.restOf("outlayout"));
        k.tunedEfficiency =
            r.asHexDouble(r.fieldsOf("efficiency", 1)[0]);
        if (!(k.tunedEfficiency > 0.0 && k.tunedEfficiency <= 1.0))
            r.fail("tuned efficiency outside (0, 1]");
        if (r.peekKeyword("streaming"))
            k.streamingAttention =
                r.asBool(r.fieldsOf("streaming", 1)[0]);

        const auto n_inputs =
            r.asInt(r.fieldsOf("inputs", 1)[0], 0, 1 << 24);
        k.inputs.reserve(static_cast<std::size_t>(n_inputs));
        for (std::int64_t j = 0; j < n_inputs; ++j) {
            runtime::KernelInput in;
            const auto fields = r.fieldsOf("input", 4);
            in.source = static_cast<ir::ValueId>(
                r.asInt(fields[0], -1, n_values - 1));
            in.sourceCopy =
                static_cast<int>(r.asInt(fields[1], 0, 1 << 20));
            in.substitute = static_cast<ir::ValueId>(
                r.asInt(fields[2], -1, n_values - 1));
            in.internalSource = r.asBool(fields[3]);
            in.layout = ir::Layout::parse(r.restOf("layout"));
            if (r.peekKeyword("readmap"))
                in.readMap = index::IndexMap::parse(r.restOf("readmap"));
            k.inputs.push_back(std::move(in));
        }
        plan.kernels.push_back(std::move(k));
    }

    if (r.next() != "end")
        r.fail("expected 'end'");
    if (!r.atEnd())
        r.fail("trailing text after 'end'");

    plan.graph = std::move(graph);
    return plan;
}

} // namespace smartmem::serialize
