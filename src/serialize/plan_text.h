/**
 * @file
 * Round-trip text serialization of ExecutionPlan.
 *
 * ExecutionPlan::toString() is a human-oriented dump and drops fields
 * (tuned efficiencies, internal-source flags, fused node ids, the
 * cache key).  This module is the loss-free counterpart: a versioned,
 * self-describing, line-oriented text format whose writer and
 * tokenizing parser satisfy, for every plan the compilers produce,
 *
 *   parsePlan(serializePlan(p), g).toString()   == p.toString()
 *   serializePlan(parsePlan(serializePlan(p), g)) == serializePlan(p)
 *
 * Layouts, index maps, and index expressions are embedded in their
 * printed forms and re-read by Layout::parse / IndexMap::parse /
 * parseExpr; doubles are written as hex floats so not a bit is lost.
 *
 * The graph is NOT embedded in the plan text: graphs have their own
 * standalone format (serialize/graph_text.h, `.smgraph`), and
 * core::PlanCacheDir stores one next to each cached plan.  The plan
 * format records the graph's node/value counts plus its canonical
 * signature, and parsePlan() verifies the caller-supplied graph
 * matches before attaching it (PlanCacheDir treats a mismatch as a
 * cache miss).
 *
 * Format v1 (one field per line; *name*, *cachekey* and *compiler*
 * take the rest of the line, everything else is space-separated):
 *
 *   smartmem-plan v1
 *   compiler <name>
 *   cachekey <key>                      (may be empty)
 *   graph <#nodes> <#values> <sig>
 *   kernels <N>
 *   kernel <i>
 *   name <kernel name>
 *   fused <count> <node-id>...
 *   output <value-id> <copy-index> <is-layout-copy>
 *   outlayout <Layout::toString()>
 *   efficiency <hexfloat>
 *   inputs <M>
 *   input <source> <source-copy> <substitute> <internal>
 *   layout <Layout::toString()>
 *   readmap <IndexMap::toString()>      (only when present)
 *   ...
 *   end
 */
#ifndef SMARTMEM_SERIALIZE_PLAN_TEXT_H
#define SMARTMEM_SERIALIZE_PLAN_TEXT_H

#include <string>

#include "ir/graph.h"
#include "runtime/plan.h"
#include "serialize/graph_text.h"

namespace smartmem::serialize {

/** Bumped whenever the on-disk grammar changes; parsePlan() rejects
 *  every other version, which is what lets PlanCacheDir silently
 *  recompile instead of misreading stale entries. */
constexpr int kPlanFormatVersion = 1;

// graphSignature() lives in serialize/graph_text.h (included above);
// the plan format embeds it on its `graph` line.

/** Write `plan` in format v1 (see file header).  Deterministic:
 *  equal plans serialize to byte-identical text. */
std::string serializePlan(const runtime::ExecutionPlan &plan);

/**
 * Parse text produced by serializePlan() and attach `graph` (which
 * must match the recorded signature) as the plan's graph.  Throws
 * FatalError on any malformed input: wrong version, truncated or
 * reordered fields, unparsable layouts/index maps/numbers,
 * out-of-range node or value ids, or a graph mismatch.
 */
runtime::ExecutionPlan parsePlan(const std::string &text,
                                 ir::Graph graph);

} // namespace smartmem::serialize

#endif // SMARTMEM_SERIALIZE_PLAN_TEXT_H
