#include "serialize/graph_text.h"

#include <limits>
#include <sstream>
#include <vector>

#include "serialize/text_reader.h"
#include "support/error.h"
#include "support/hash.h"
#include "support/strings.h"

namespace smartmem::serialize {

namespace {

/** Shapes as single space-free tokens: "[1,64,56,56]", "[]" for rank
 *  0.  Shape::parse() accepts this compact form. */
std::string
compactShape(const ir::Shape &shape)
{
    return "[" + joinInts(shape.dims(), ",") + "]";
}

void
requireWritable(const std::string &name, const char *what)
{
    SM_REQUIRE(name.find('\n') == std::string::npos,
               std::string(what) + " contains a newline and cannot be "
               "serialized: '" + name + "'");
}

} // namespace

std::string
graphSignature(const ir::Graph &graph)
{
    Fnv1a f;
    f.feed(static_cast<std::int64_t>(graph.nodes().size()));
    f.feed(static_cast<std::int64_t>(graph.values().size()));
    for (const ir::Node &n : graph.nodes()) {
        f.feed(static_cast<std::int64_t>(n.id));
        f.feed(ir::opKindName(n.kind));
        f.feed(n.name);
        for (ir::ValueId v : n.inputs)
            f.feed(static_cast<std::int64_t>(v));
        f.feed(static_cast<std::int64_t>(n.output));
        f.feed(n.attrs.toString());
    }
    for (const ir::Value &v : graph.values()) {
        f.feed(static_cast<std::int64_t>(v.id));
        f.feed(v.name);
        f.feed(v.shape.toString());
        f.feed(static_cast<std::int64_t>(v.dtype));
        f.feed(static_cast<std::int64_t>(v.producer));
    }
    for (ir::ValueId v : graph.inputIds())
        f.feed(static_cast<std::int64_t>(v));
    for (ir::ValueId v : graph.outputIds())
        f.feed(static_cast<std::int64_t>(v));
    return f.hex();
}

std::string
serializeGraph(const ir::Graph &graph)
{
    std::ostringstream os;
    os << "smartmem-graph v" << kGraphFormatVersion << "\n";

    os << "values " << graph.values().size() << "\n";
    for (const ir::Value &v : graph.values()) {
        requireWritable(v.name, "value name");
        os << "value " << v.id << " " << ir::dtypeName(v.dtype) << " "
           << compactShape(v.shape);
        if (!v.name.empty())
            os << " " << v.name;
        os << "\n";
    }

    os << "nodes " << graph.nodes().size() << "\n";
    for (const ir::Node &n : graph.nodes()) {
        requireWritable(n.name, "node name");
        os << "node " << n.id << " " << ir::opKindName(n.kind) << " "
           << n.output << "\n";
        os << "name";
        if (!n.name.empty())
            os << " " << n.name;
        os << "\n";
        os << "in " << n.inputs.size();
        for (ir::ValueId in : n.inputs)
            os << " " << in;
        os << "\n";
        os << "attrs " << n.attrs.entries().size() << "\n";
        for (const auto &[key, vals] : n.attrs.entries()) {
            SM_REQUIRE(!key.empty() &&
                       key.find(' ') == std::string::npos &&
                       key.find('\n') == std::string::npos,
                       "attr key not serializable: '" + key + "'");
            os << "attr " << key << " " << vals.size();
            for (std::int64_t v : vals)
                os << " " << v;
            os << "\n";
        }
    }

    os << "inputs " << graph.inputIds().size();
    for (ir::ValueId v : graph.inputIds())
        os << " " << v;
    os << "\n";
    os << "outputs " << graph.outputIds().size();
    for (ir::ValueId v : graph.outputIds())
        os << " " << v;
    os << "\n";
    os << "end\n";
    return os.str();
}

ir::Graph
parseGraph(const std::string &text)
{
    constexpr std::int64_t kMaxCount = std::int64_t{1} << 30;
    constexpr std::int64_t kMinI64 =
        std::numeric_limits<std::int64_t>::min();
    constexpr std::int64_t kMaxI64 =
        std::numeric_limits<std::int64_t>::max();

    LineReader r(text, "graph");

    const std::string header = r.next();
    if (header !=
        "smartmem-graph v" + std::to_string(kGraphFormatVersion))
        r.fail("unsupported graph format: '" + header + "'");

    ir::GraphParts parts;

    const auto n_values =
        r.asInt(r.fieldsOf("values", 1)[0], 0, kMaxCount);
    parts.values.reserve(static_cast<std::size_t>(n_values));
    for (std::int64_t i = 0; i < n_values; ++i) {
        // "value <id> <dtype> <shape> <name...>": three space-split
        // tokens, then the name takes the rest of the line (it may be
        // empty or contain spaces).
        std::string rest = r.restOf("value");
        std::size_t pos = 0;
        auto token = [&]() {
            std::size_t stop = rest.find(' ', pos);
            if (stop == std::string::npos)
                stop = rest.size();
            if (stop == pos)
                r.fail("empty field in 'value' line");
            std::string t = rest.substr(pos, stop - pos);
            pos = stop == rest.size() ? stop : stop + 1;
            return t;
        };
        ir::Value v;
        v.id = static_cast<ir::ValueId>(
            r.asInt(token(), 0, kMaxCount));
        const std::string dtype = token();
        const std::string shape = token();
        try {
            v.dtype = ir::dtypeFromName(dtype);
            v.shape = ir::Shape::parse(shape);
        } catch (const FatalError &err) {
            r.fail(err.what());
        }
        v.name = pos < rest.size() ? rest.substr(pos) : "";
        v.producer = ir::invalidNode;
        parts.values.push_back(std::move(v));
    }

    const auto n_nodes =
        r.asInt(r.fieldsOf("nodes", 1)[0], 0, kMaxCount);
    parts.nodes.reserve(static_cast<std::size_t>(n_nodes));
    for (std::int64_t i = 0; i < n_nodes; ++i) {
        const auto nf = r.fieldsOf("node", 3);
        ir::Node n;
        n.id = static_cast<ir::NodeId>(r.asInt(nf[0], 0, kMaxCount));
        try {
            n.kind = ir::opKindFromName(nf[1]);
        } catch (const FatalError &err) {
            r.fail(err.what());
        }
        n.output = static_cast<ir::ValueId>(
            r.asInt(nf[2], 0, kMaxCount));
        n.name = r.restOf("name");

        const auto ins = r.fieldsOf("in", -1);
        if (ins.empty())
            r.fail("'in' expects a count");
        const auto n_in = r.asInt(ins[0], 0, kMaxCount);
        if (static_cast<std::int64_t>(ins.size()) != n_in + 1)
            r.fail("'in' count disagrees with the id list");
        for (std::int64_t j = 0; j < n_in; ++j) {
            n.inputs.push_back(static_cast<ir::ValueId>(
                r.asInt(ins[static_cast<std::size_t>(j + 1)], 0,
                        kMaxCount)));
        }

        const auto n_attrs =
            r.asInt(r.fieldsOf("attrs", 1)[0], 0, kMaxCount);
        for (std::int64_t j = 0; j < n_attrs; ++j) {
            const auto af = r.fieldsOf("attr", -1);
            if (af.size() < 2)
                r.fail("'attr' expects a key and a count");
            const auto n_vals = r.asInt(af[1], 0, kMaxCount);
            if (static_cast<std::int64_t>(af.size()) != n_vals + 2)
                r.fail("'attr' count disagrees with the value list");
            std::vector<std::int64_t> vals;
            vals.reserve(static_cast<std::size_t>(n_vals));
            for (std::int64_t k = 0; k < n_vals; ++k)
                vals.push_back(r.asInt(
                    af[static_cast<std::size_t>(k + 2)], kMinI64,
                    kMaxI64));
            if (n.attrs.has(af[0]))
                r.fail("duplicate attr key '" + af[0] + "'");
            n.attrs.set(af[0], std::move(vals));
        }
        parts.nodes.push_back(std::move(n));
    }

    // Derive value producers from node outputs; validateGraphParts
    // flags conflicts (two nodes claiming one value) and orphans.
    for (const ir::Node &n : parts.nodes) {
        if (n.output >= 0 &&
            n.output < static_cast<ir::ValueId>(parts.values.size()))
            parts.values[static_cast<std::size_t>(n.output)].producer =
                n.id;
    }

    for (const char *section : {"inputs", "outputs"}) {
        const auto f = r.fieldsOf(section, -1);
        if (f.empty())
            r.fail(std::string("'") + section + "' expects a count");
        const auto count = r.asInt(f[0], 0, kMaxCount);
        if (static_cast<std::int64_t>(f.size()) != count + 1)
            r.fail(std::string("'") + section +
                   "' count disagrees with the id list");
        auto &dst = section[0] == 'i' ? parts.inputs : parts.outputs;
        for (std::int64_t j = 0; j < count; ++j)
            dst.push_back(static_cast<ir::ValueId>(
                r.asInt(f[static_cast<std::size_t>(j + 1)], 0,
                        kMaxCount)));
    }

    if (r.next() != "end")
        r.fail("expected 'end'");
    if (!r.atEnd())
        r.fail("trailing text after 'end'");

    // Structural validation; throws with one diagnostic per violation.
    return ir::makeGraph(std::move(parts));
}

} // namespace smartmem::serialize
