/**
 * @file
 * Shared scaffolding for the line-oriented text formats (.smgraph
 * plan/graph serialization): a rewindable line cursor with typed field
 * accessors, plus the loss-free hex-float writer.  Factored out of
 * plan_text.cc so graph_text.cc parses with the exact same idiom and
 * error style -- every failure names the format ("plan parse error at
 * line N: ..." / "graph parse error at line N: ...") and the offending
 * line.
 */
#ifndef SMARTMEM_SERIALIZE_TEXT_READER_H
#define SMARTMEM_SERIALIZE_TEXT_READER_H

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "support/error.h"
#include "support/strings.h"

namespace smartmem::serialize {

/** Doubles as loss-free hex floats ("0x1.b333333333333p-1"). */
inline std::string
hexDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

/** Line cursor over serialized text with rewindable peeking.
 *  `context` names the format in diagnostics ("plan", "graph"). */
class LineReader
{
  public:
    LineReader(const std::string &text, const std::string &context)
        : text_(text), context_(context) {}

    int lineNumber() const { return lineNo_; }

    [[noreturn]] void fail(const std::string &why) const
    {
        smFatal(context_ + " parse error at line " +
                std::to_string(lineNo_) + ": " + why);
    }

    /** Next line; fails on end of input. */
    std::string next()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of " + context_ + " text");
        std::size_t stop = text_.find('\n', pos_);
        if (stop == std::string::npos)
            fail("missing final newline");
        std::string line = text_.substr(pos_, stop - pos_);
        pos_ = stop + 1;
        ++lineNo_;
        return line;
    }

    bool atEnd() const { return pos_ >= text_.size(); }

    /** True if the next line starts with `keyword` + ' ' (or is
     *  exactly `keyword`); does not consume. */
    bool peekKeyword(const std::string &keyword) const
    {
        if (pos_ >= text_.size())
            return false;
        std::size_t stop = text_.find('\n', pos_);
        std::size_t len = (stop == std::string::npos ? text_.size()
                                                     : stop) - pos_;
        if (len < keyword.size() ||
            text_.compare(pos_, keyword.size(), keyword) != 0)
            return false;
        return len == keyword.size() ||
               text_[pos_ + keyword.size()] == ' ';
    }

    /** Consume a line of the form "<keyword>" or "<keyword> <rest>"
     *  and return <rest> (empty for the bare form). */
    std::string restOf(const std::string &keyword)
    {
        std::string line = next();
        if (line == keyword)
            return "";
        if (line.size() <= keyword.size() ||
            line.compare(0, keyword.size(), keyword) != 0 ||
            line[keyword.size()] != ' ')
            fail("expected '" + keyword + " ...', got '" + line + "'");
        return line.substr(keyword.size() + 1);
    }

    /** Consume "<keyword> f0 f1 ..." and return the fields, which
     *  must number exactly `count` (count < 0: any number). */
    std::vector<std::string> fieldsOf(const std::string &keyword,
                                      int count)
    {
        std::string rest = restOf(keyword);
        std::vector<std::string> fields;
        std::size_t pos = 0;
        while (pos < rest.size()) {
            std::size_t stop = rest.find(' ', pos);
            if (stop == std::string::npos)
                stop = rest.size();
            if (stop == pos)
                fail("empty field in '" + keyword + "' line");
            fields.push_back(rest.substr(pos, stop - pos));
            pos = stop + 1;
        }
        if (count >= 0 && static_cast<int>(fields.size()) != count)
            fail("'" + keyword + "' expects " + std::to_string(count) +
                 " fields, got " + std::to_string(fields.size()));
        return fields;
    }

    std::int64_t asInt(const std::string &field, std::int64_t lo,
                       std::int64_t hi) const
    {
        auto v = parseInt64(field);
        if (!v || *v < lo || *v > hi)
            fail("integer field '" + field + "' out of range [" +
                 std::to_string(lo) + ", " + std::to_string(hi) + "]");
        return *v;
    }

    bool asBool(const std::string &field) const
    {
        return asInt(field, 0, 1) == 1;
    }

    double asHexDouble(const std::string &field) const
    {
        char *end = nullptr;
        double v = std::strtod(field.c_str(), &end);
        if (field.empty() || end != field.c_str() + field.size())
            fail("malformed float field '" + field + "'");
        return v;
    }

  private:
    const std::string &text_;
    std::string context_;
    std::size_t pos_ = 0;
    int lineNo_ = 0;
};

} // namespace smartmem::serialize

#endif // SMARTMEM_SERIALIZE_TEXT_READER_H
