/**
 * @file
 * Round-trip text serialization of ir::Graph -- the `.smgraph` format.
 *
 * Until this module, a graph could only come from a compiled-in zoo
 * builder keyed by (model, batch); `.smgraph` makes graphs standalone
 * *data*, so external models flow through compile, opt, the plan
 * cache, and both executors, and `core::PlanCacheDir` can validate a
 * cached plan against an adjacent serialized graph instead of
 * re-running a builder.  Same writer + tokenizing-parser idiom as
 * plan_text/.smdev, and the same bar: for every graph the builders or
 * passes produce,
 *
 *   serializeGraph(parseGraph(serializeGraph(g))) == serializeGraph(g)
 *   graphSignature(parseGraph(serializeGraph(g))) == graphSignature(g)
 *
 * Every Graph field round-trips: op kinds, node names, attrs
 * (including synthesized-constant salts and derived recipes, which are
 * ordinary integer attributes), value names/shapes/dtypes, and the
 * graph input/output lists.  Value producers are not written -- they
 * are derivable from node outputs and re-derived by the parser.
 *
 * Format v1 (one field per line; *name* fields take the rest of the
 * line, shapes are written compact with no internal spaces, everything
 * else is space-separated):
 *
 *   smartmem-graph v1
 *   values <N>
 *   value <id> <dtype> <shape> <name>        (xN, ids ascending)
 *   nodes <N>
 *   node <id> <kind> <output-value-id>       (xN, ids ascending)
 *   name <node name>
 *   in <count> <value-id>...
 *   attrs <count>
 *   attr <key> <count> <int64>...            (xcount, keys sorted)
 *   inputs <count> <value-id>...
 *   outputs <count> <value-id>...
 *   end
 *
 * parseGraph() runs ir::validateGraphParts() on everything it reads --
 * a file that parses lexically but encodes a dangling id, a cycle, a
 * shape-inference mismatch, or a malformed constant is rejected with
 * one diagnostic per violation.
 */
#ifndef SMARTMEM_SERIALIZE_GRAPH_TEXT_H
#define SMARTMEM_SERIALIZE_GRAPH_TEXT_H

#include <string>

#include "ir/graph.h"

namespace smartmem::serialize {

/** Bumped whenever the on-disk grammar changes; parseGraph() rejects
 *  every other version. */
constexpr int kGraphFormatVersion = 1;

/**
 * Canonical FNV-1a signature over every graph field a plan depends on
 * (node kinds/names/edges/attrs, value names/shapes/dtypes/producers,
 * graph inputs and outputs).  Two graphs with equal signatures are
 * interchangeable as the graph of a serialized plan; cache keys for
 * compiled plans embed the signature of the canonicalized graph.
 */
std::string graphSignature(const ir::Graph &graph);

/** Write `graph` in format v1 (see file header).  Deterministic:
 *  equal graphs serialize to byte-identical text. */
std::string serializeGraph(const ir::Graph &graph);

/**
 * Parse text produced by serializeGraph() (or hand-written in the same
 * grammar) into a validated graph.  Throws FatalError on malformed
 * text (wrong version, truncated or reordered fields, unparsable
 * shapes/dtypes/op kinds/numbers) and on structurally invalid graphs,
 * with every ir::validateGraphParts() diagnostic joined into the
 * message.
 */
ir::Graph parseGraph(const std::string &text);

} // namespace smartmem::serialize

#endif // SMARTMEM_SERIALIZE_GRAPH_TEXT_H
